//! Likert scales and validated response vectors.

use pdc_stats::describe::{mean, round_to};
use serde::{Deserialize, Serialize};

/// A 5-point Likert scale with its category labels (1 → first label).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LikertScale {
    /// What the question measures (shown in reports).
    pub measures: String,
    /// Labels for 1..=5.
    pub labels: [String; 5],
}

impl LikertScale {
    fn with(measures: &str, labels: [&str; 5]) -> Self {
        Self {
            measures: measures.to_owned(),
            labels: labels.map(str::to_owned),
        }
    }

    /// Table II's usefulness scale: "1 is 'not at all useful', 5 is
    /// 'extremely useful'".
    pub fn usefulness() -> Self {
        Self::with(
            "usefulness",
            [
                "not at all useful",
                "slightly useful",
                "moderately useful",
                "very useful",
                "extremely useful",
            ],
        )
    }

    /// Figure 3's confidence scale.
    pub fn confidence() -> Self {
        Self::with(
            "confidence",
            ["not at all", "slightly", "moderately", "very", "extremely"],
        )
    }

    /// Figure 4's preparedness scale.
    pub fn preparedness() -> Self {
        Self::with(
            "preparedness",
            [
                "not at all",
                "a little bit",
                "somewhat",
                "quite a bit",
                "very much",
            ],
        )
    }

    /// Label for a response value.
    pub fn label(&self, value: u8) -> Option<&str> {
        if (1..=5).contains(&value) {
            Some(&self.labels[value as usize - 1])
        } else {
            None
        }
    }
}

/// A validated vector of 1..=5 responses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LikertVector(Vec<u8>);

impl LikertVector {
    /// Validate and wrap raw responses.
    pub fn new(values: Vec<u8>) -> Result<Self, String> {
        if let Some(bad) = values.iter().find(|&&v| !(1..=5).contains(&v)) {
            return Err(format!("Likert response {bad} outside 1..=5"));
        }
        Ok(Self(values))
    }

    /// Build from bin counts `[n1, n2, n3, n4, n5]` (ascending values).
    pub fn from_counts(counts: [usize; 5]) -> Self {
        let mut v = Vec::with_capacity(counts.iter().sum());
        for (i, &c) in counts.iter().enumerate() {
            v.extend(std::iter::repeat_n(i as u8 + 1, c));
        }
        Self(v)
    }

    /// Responses as a slice.
    pub fn values(&self) -> &[u8] {
        &self.0
    }

    /// Responses as f64s (for the stats crate).
    pub fn as_f64(&self) -> Vec<f64> {
        self.0.iter().map(|&v| v as f64).collect()
    }

    /// Responses as i64s (for histograms).
    pub fn as_i64(&self) -> Vec<i64> {
        self.0.iter().map(|&v| v as i64).collect()
    }

    /// Bin counts `[n1..n5]`.
    pub fn counts(&self) -> [usize; 5] {
        let mut c = [0usize; 5];
        for &v in &self.0 {
            c[v as usize - 1] += 1;
        }
        c
    }

    /// Number of responses.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Empty?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Mean rounded to 2 decimals — the paper's reporting precision.
    pub fn reported_mean(&self) -> f64 {
        round_to(mean(&self.as_f64()).expect("non-empty"), 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_have_five_labels() {
        for s in [
            LikertScale::usefulness(),
            LikertScale::confidence(),
            LikertScale::preparedness(),
        ] {
            assert_eq!(s.labels.len(), 5);
            assert_eq!(s.label(1).unwrap(), s.labels[0]);
            assert_eq!(s.label(5).unwrap(), s.labels[4]);
            assert!(s.label(0).is_none());
            assert!(s.label(6).is_none());
        }
    }

    #[test]
    fn preparedness_labels_match_figure4_axis() {
        let s = LikertScale::preparedness();
        assert_eq!(
            s.labels,
            [
                "not at all",
                "a little bit",
                "somewhat",
                "quite a bit",
                "very much"
            ]
        );
    }

    #[test]
    fn vector_validation() {
        assert!(LikertVector::new(vec![1, 3, 5]).is_ok());
        assert!(LikertVector::new(vec![0]).is_err());
        assert!(LikertVector::new(vec![6]).is_err());
    }

    #[test]
    fn counts_round_trip() {
        let counts = [1, 8, 8, 4, 1];
        let v = LikertVector::from_counts(counts);
        assert_eq!(v.len(), 22);
        assert_eq!(v.counts(), counts);
    }

    #[test]
    fn reported_mean_rounds_like_the_paper() {
        // 13 fives + 8 fours + 1 three: mean 4.5454… → 4.55 (Table II).
        let v = LikertVector::from_counts([0, 0, 1, 8, 13]);
        assert_eq!(v.reported_mean(), 4.55);
    }
}
