//! The assembled workshop evaluation: Table II and Figures 3–4, with
//! renderers matching the paper's presentation.

use pdc_stats::histogram::LikertHistogram;
use pdc_stats::ttest::TTestResult;
use serde::{Deserialize, Serialize};

use crate::likert::LikertVector;
use crate::reconstruct::{reconstruct_mean_vector, PairedReconstruction};

/// The paper's published session-usefulness means (Table II).
pub const TABLE2_PUBLISHED: [(&str, f64, f64); 2] = [
    ("OpenMP on Raspberry Pi", 4.55, 4.45),
    ("MPI & Distr. Cluster Computing", 4.38, 4.29),
];

/// One Table II row with its reconstructed response vectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableIIRow {
    /// Session name.
    pub session: String,
    /// (A) usefulness for implementing PDC in courses.
    pub implementing: LikertVector,
    /// Respondents for (A) (22 minus skips).
    pub implementing_n: usize,
    /// (B) usefulness for professional development.
    pub development: LikertVector,
    /// Respondents for (B).
    pub development_n: usize,
}

/// Table II, reconstructed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableII {
    /// The two session rows.
    pub rows: Vec<TableIIRow>,
}

impl TableII {
    /// Reconstruct Table II from the published means.
    pub fn reconstruct() -> Self {
        let rows = TABLE2_PUBLISHED
            .iter()
            .map(|(session, a, b)| {
                let (implementing, implementing_n) =
                    reconstruct_mean_vector(*a, 22).expect("published mean solvable");
                let (development, development_n) =
                    reconstruct_mean_vector(*b, 22).expect("published mean solvable");
                TableIIRow {
                    session: (*session).to_owned(),
                    implementing,
                    implementing_n,
                    development,
                    development_n,
                }
            })
            .collect();
        Self { rows }
    }

    /// Render in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "TABLE II: HOW USEFUL WAS EACH SESSION FOR (A) IMPLEMENTING PDC IN\n\
             YOUR COURSES; (B) YOUR PROFESSIONAL DEVELOPMENT?\n\n",
        );
        out.push_str(&format!(
            "{:<34} | {:>5} | {:>5}\n",
            "Session", "(A)", "(B)"
        ));
        out.push_str(&format!("{:-<34}-+-------+------\n", ""));
        for row in &self.rows {
            out.push_str(&format!(
                "{:<34} | {:>5.2} | {:>5.2}\n",
                row.session,
                row.implementing.reported_mean(),
                row.development.reported_mean()
            ));
        }
        out
    }
}

/// The published statistics of one pre/post figure.
#[derive(Debug, Clone, Copy)]
pub struct FigureSpec {
    /// Figure number in the paper (3 or 4).
    pub number: u8,
    /// The survey question (figure caption).
    pub caption: &'static str,
    /// Published pre-mean.
    pub pre_mean: f64,
    /// Published post-mean.
    pub post_mean: f64,
    /// Published paired-t p-value.
    pub p: f64,
    /// Histogram bars read off the figure, pre.
    pub pre_counts: [usize; 5],
    /// Histogram bars read off the figure, post.
    pub post_counts: [usize; 5],
    /// X-axis labels.
    pub labels: [&'static str; 5],
}

/// Figure 3's published statistics.
pub const FIGURE3: FigureSpec = FigureSpec {
    number: 3,
    caption:
        "Indicate your current level of confidence in implementing PDC topics in your courses.",
    pre_mean: 2.82,
    post_mean: 3.59,
    p: 4e-4,
    pre_counts: [1, 8, 8, 4, 1],
    post_counts: [0, 3, 8, 6, 5],
    labels: ["not at all", "slightly", "moderately", "very", "extremely"],
};

/// Figure 4's published statistics.
pub const FIGURE4: FigureSpec = FigureSpec {
    number: 4,
    caption: "How prepared do you feel to successfully implement PDC topics in your courses?",
    pre_mean: 2.59,
    post_mean: 3.77,
    p: 4.18e-8,
    pre_counts: [4, 7, 6, 4, 1],
    post_counts: [0, 2, 7, 7, 6],
    labels: [
        "not at all",
        "a little bit",
        "somewhat",
        "quite a bit",
        "very much",
    ],
};

/// A reconstructed figure: data + statistics + rendering.
#[derive(Debug, Clone)]
pub struct Figure34 {
    /// The published statistics targeted.
    pub spec: FigureSpec,
    /// The fitted pairing.
    pub reconstruction: PairedReconstruction,
}

impl Figure34 {
    /// Reconstruct a figure from its spec.
    pub fn reconstruct(spec: FigureSpec) -> Self {
        let reconstruction = PairedReconstruction::fit(spec.pre_counts, spec.post_counts, spec.p);
        Self {
            spec,
            reconstruction,
        }
    }

    /// The paired t-test over the reconstruction.
    pub fn t_test(&self) -> TTestResult {
        self.reconstruction.t_test()
    }

    /// Nonparametric robustness check: the Wilcoxon signed-rank test on
    /// the same pairs. Likert data is ordinal, so a conclusion that
    /// survives rank-based testing is on much firmer ground than the
    /// paper's t-test alone.
    pub fn wilcoxon(&self) -> pdc_stats::WilcoxonResult {
        let pre: Vec<f64> = self.reconstruction.pre.iter().map(|&v| v as f64).collect();
        let post: Vec<f64> = self.reconstruction.post.iter().map(|&v| v as f64).collect();
        pdc_stats::wilcoxon_signed_rank(&pre, &post)
            .expect("reconstructed figures have non-degenerate differences")
    }

    /// Render: grouped histogram + the statistics line the paper quotes.
    pub fn render(&self) -> String {
        let hist = LikertHistogram::from_responses(
            self.spec.labels,
            &self
                .reconstruction
                .pre
                .iter()
                .map(|&v| v as i64)
                .collect::<Vec<_>>(),
            &self
                .reconstruction
                .post
                .iter()
                .map(|&v| v as i64)
                .collect::<Vec<_>>(),
        )
        .expect("reconstructed responses are in range");
        let t = self.t_test();
        format!(
            "Fig. {}. {}\n\n{}\npaired t-test: pre µ = {:.2}, post µ = {:.2}, t({}) = {:.2}, p = {:.2e}\n(published: pre µ = {:.2}, post µ = {:.2}, p = {:.2e})\n",
            self.spec.number,
            self.spec.caption,
            hist.render_grouped(),
            mean_of(&self.reconstruction.pre),
            mean_of(&self.reconstruction.post),
            t.df as i64,
            t.t,
            t.p_two_sided,
            self.spec.pre_mean,
            self.spec.post_mean,
            self.spec.p,
        )
    }
}

fn mean_of(v: &[u8]) -> f64 {
    v.iter().map(|&x| x as f64).sum::<f64>() / v.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_reconstruction_means_match_published() {
        let t = TableII::reconstruct();
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0].implementing.reported_mean(), 4.55);
        assert_eq!(t.rows[0].development.reported_mean(), 4.45);
        assert_eq!(t.rows[1].implementing.reported_mean(), 4.38);
        assert_eq!(t.rows[1].development.reported_mean(), 4.29);
    }

    #[test]
    fn table2_mpi_row_needed_a_skip() {
        let t = TableII::reconstruct();
        assert_eq!(t.rows[0].implementing_n, 22);
        assert_eq!(t.rows[1].implementing_n, 21);
        assert_eq!(t.rows[1].development_n, 21);
    }

    #[test]
    fn table2_openmp_rated_highest() {
        // "the highest … rated sessions were those in which they used
        // these two modules" with OpenMP/Pi first.
        let t = TableII::reconstruct();
        assert!(t.rows[0].implementing.reported_mean() > t.rows[1].implementing.reported_mean());
        assert!(t.rows[0].development.reported_mean() > t.rows[1].development.reported_mean());
    }

    #[test]
    fn table2_renders_paper_layout() {
        let s = TableII::reconstruct().render();
        assert!(s.contains("OpenMP on Raspberry Pi"));
        assert!(s.contains("4.55"));
        assert!(s.contains("4.45"));
        assert!(s.contains("MPI & Distr. Cluster Computing"));
        assert!(s.contains("4.38"));
        assert!(s.contains("4.29"));
    }

    #[test]
    fn figure3_spec_consistency() {
        // Bars sum to the cohort; totals give the published means.
        let total: usize = FIGURE3.pre_counts.iter().sum();
        assert_eq!(total, 22);
        let total: usize = FIGURE3.post_counts.iter().sum();
        assert_eq!(total, 22);
        let pre_sum: usize = FIGURE3
            .pre_counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (i + 1) * c)
            .sum();
        assert_eq!(pre_sum, 62); // 62/22 = 2.818 → 2.82
        let post_sum: usize = FIGURE3
            .post_counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (i + 1) * c)
            .sum();
        assert_eq!(post_sum, 79); // 79/22 = 3.591 → 3.59
    }

    #[test]
    fn figure4_spec_consistency() {
        let pre_sum: usize = FIGURE4
            .pre_counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (i + 1) * c)
            .sum();
        assert_eq!(pre_sum, 57); // 57/22 = 2.591 → 2.59
        let post_sum: usize = FIGURE4
            .post_counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (i + 1) * c)
            .sum();
        assert_eq!(post_sum, 83); // 83/22 = 3.773 → 3.77
    }

    #[test]
    fn figures_reconstruct_with_significant_increases() {
        for spec in [FIGURE3, FIGURE4] {
            let fig = Figure34::reconstruct(spec);
            let t = fig.t_test();
            assert!(t.mean_diff > 0.0, "fig {}", spec.number);
            assert!(
                t.p_two_sided < 0.01,
                "fig {}: p = {}",
                spec.number,
                t.p_two_sided
            );
        }
    }

    #[test]
    fn figure_render_quotes_published_stats() {
        let fig = Figure34::reconstruct(FIGURE3);
        let s = fig.render();
        assert!(s.contains("Fig. 3."));
        assert!(s.contains("confidence"));
        assert!(s.contains("published: pre µ = 2.82, post µ = 3.59"));
        assert!(s.contains("moderately"));
    }

    #[test]
    fn figure4_stronger_than_figure3() {
        // The paper's preparedness effect (p = 4.18e-08) dwarfs the
        // confidence effect (p = 0.0004); the reconstructions must keep
        // that ordering.
        let f3 = Figure34::reconstruct(FIGURE3);
        let f4 = Figure34::reconstruct(FIGURE4);
        assert!(f4.t_test().p_two_sided < f3.t_test().p_two_sided);
    }
}

#[cfg(test)]
mod robustness_tests {
    use super::*;

    #[test]
    fn wilcoxon_confirms_both_figures() {
        // The rank-based test must agree with the t-test's conclusion:
        // significant pre→post increases in both figures.
        for spec in [FIGURE3, FIGURE4] {
            let fig = Figure34::reconstruct(spec);
            let w = fig.wilcoxon();
            assert!(w.rank_sum_diff > 0.0, "fig {}: increase", spec.number);
            assert!(
                w.p_two_sided < 0.01,
                "fig {}: wilcoxon p = {}",
                spec.number,
                w.p_two_sided
            );
        }
    }

    #[test]
    fn wilcoxon_and_t_agree_on_ordering() {
        // Preparedness (fig 4) shows the stronger effect under both tests.
        let f3 = Figure34::reconstruct(FIGURE3);
        let f4 = Figure34::reconstruct(FIGURE4);
        assert!(f4.wilcoxon().p_two_sided <= f3.wilcoxon().p_two_sided);
        assert!(f4.t_test().p_two_sided <= f3.t_test().p_two_sided);
    }
}

impl TableII {
    /// Render the table with bootstrap 95% confidence intervals attached
    /// to each reconstructed mean — the uncertainty the paper omits.
    pub fn render_with_ci(&self) -> String {
        let mut out = self.render();
        out.push_str("\nwith bootstrap 95% CIs over the reconstructed responses:\n");
        for row in &self.rows {
            let ci_a = pdc_stats::bootstrap_mean_ci(&row.implementing.as_f64(), 2000, 0.05, 2020)
                .expect("n >= 2");
            let ci_b = pdc_stats::bootstrap_mean_ci(&row.development.as_f64(), 2000, 0.05, 2021)
                .expect("n >= 2");
            out.push_str(&format!(
                "{:<34} | {:.2} [{:.2}, {:.2}] | {:.2} [{:.2}, {:.2}]\n",
                row.session,
                row.implementing.reported_mean(),
                ci_a.lo,
                ci_a.hi,
                row.development.reported_mean(),
                ci_b.lo,
                ci_b.hi,
            ));
        }
        out
    }
}

#[cfg(test)]
mod ci_tests {
    use super::*;

    #[test]
    fn table2_cis_are_tight_and_ordered() {
        let t = TableII::reconstruct();
        let text = t.render_with_ci();
        assert!(text.contains("bootstrap 95% CIs"));
        // CIs over 21-22 responses on a 1-5 scale should be subunit.
        for row in &t.rows {
            let ci =
                pdc_stats::bootstrap_mean_ci(&row.implementing.as_f64(), 2000, 0.05, 2020).unwrap();
            assert!(ci.width() < 1.0, "{:?}", ci);
            assert!(ci.contains(row.implementing.reported_mean()));
        }
    }

    #[test]
    fn openmp_and_mpi_cis_overlap() {
        // An honest caveat the reproduction surfaces: with n = 22 the two
        // sessions' usefulness ratings are NOT statistically separable —
        // their CIs overlap, so "highest-rated" is descriptive only.
        let t = TableII::reconstruct();
        let a =
            pdc_stats::bootstrap_mean_ci(&t.rows[0].implementing.as_f64(), 2000, 0.05, 1).unwrap();
        let b =
            pdc_stats::bootstrap_mean_ci(&t.rows[1].implementing.as_f64(), 2000, 0.05, 1).unwrap();
        assert!(
            a.lo <= b.hi && b.lo <= a.hi,
            "CIs should overlap: {a:?} vs {b:?}"
        );
    }
}
