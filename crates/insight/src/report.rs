//! The serializable insight artifact (`artifacts/BENCH_insight.json`).
//!
//! One [`InsightReport`] holds, per study, the critical-path breakdown,
//! the scaling table (speedup / efficiency / Karp–Flatt per worker
//! count), and the folded histogram percentiles. Floats are rounded to
//! four decimals at construction so the JSON is byte-deterministic
//! whenever the inputs are; this is the file `pdc-insight diff` gates
//! on and CI compares across double runs.

use serde::{Deserialize, Serialize};

use crate::dag::CriticalPath;
use crate::histset::HistogramSet;

/// Schema tag stamped into the artifact.
pub const SCHEMA: &str = "pdc-insight/v1";

/// Round to four decimals — the artifact's fixed float precision.
pub fn round4(x: f64) -> f64 {
    (x * 10_000.0).round() / 10_000.0
}

/// Critical-path attribution of one study, nanoseconds per category.
/// The categories sum to `wall_ns` exactly — every nanosecond of the
/// wall interval is attributed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathSummary {
    pub wall_ns: u64,
    pub compute_ns: u64,
    pub barrier_ns: u64,
    pub lock_ns: u64,
    pub wire_ns: u64,
    pub idle_ns: u64,
    /// Number of steps (lane intervals) on the path.
    pub steps: usize,
}

impl From<&CriticalPath> for PathSummary {
    fn from(cp: &CriticalPath) -> Self {
        PathSummary {
            wall_ns: cp.wall_ns,
            compute_ns: cp.breakdown.compute_ns,
            barrier_ns: cp.breakdown.barrier_ns,
            lock_ns: cp.breakdown.lock_ns,
            wire_ns: cp.breakdown.wire_ns,
            idle_ns: cp.breakdown.idle_ns,
            steps: cp.steps.len(),
        }
    }
}

impl PathSummary {
    /// Sum over all categories.
    pub fn total_ns(&self) -> u64 {
        self.compute_ns + self.barrier_ns + self.lock_ns + self.wire_ns + self.idle_ns
    }

    /// `(label, ns)` pairs in fixed display order.
    pub fn parts(&self) -> [(&'static str, u64); 5] {
        [
            ("compute", self.compute_ns),
            ("barrier", self.barrier_ns),
            ("lock", self.lock_ns),
            ("wire", self.wire_ns),
            ("idle", self.idle_ns),
        ]
    }
}

/// One row of a study's scaling table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingRow {
    /// Worker count.
    pub p: usize,
    /// Modeled/measured wall time at `p` workers, seconds.
    pub time_s: f64,
    /// `T(1) / T(p)`.
    pub speedup: f64,
    /// `speedup / p`.
    pub efficiency: f64,
    /// Karp–Flatt experimentally determined serial fraction
    /// (`NaN`-free: 0 for `p == 1`).
    pub karp_flatt: f64,
}

impl ScalingRow {
    /// Build a row with the artifact's fixed rounding applied.
    pub fn new(p: usize, time_s: f64, speedup: f64, efficiency: f64, karp_flatt: f64) -> Self {
        ScalingRow {
            p,
            time_s: round4(time_s),
            speedup: round4(speedup),
            efficiency: round4(efficiency),
            karp_flatt: round4(karp_flatt),
        }
    }
}

/// Folded percentile summary of one histogram metric.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistSummary {
    pub cat: String,
    pub name: String,
    pub count: u64,
    pub p50_ns: u64,
    pub p90_ns: u64,
    pub p99_ns: u64,
    pub max_ns: u64,
}

/// All histogram metrics of a set, in deterministic order.
pub fn hist_summaries(set: &HistogramSet) -> Vec<HistSummary> {
    set.iter()
        .map(|(cat, name, h)| {
            let (p50, p90, p99) = h.quantiles();
            HistSummary {
                cat: cat.to_owned(),
                name: name.to_owned(),
                count: h.count(),
                p50_ns: p50,
                p90_ns: p90,
                p99_ns: p99,
                max_ns: h.max(),
            }
        })
        .collect()
}

/// One study's insight: where its time went and how it scaled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyInsight {
    /// Study name (`"module A"`, `"module B"`, `"net"`).
    pub study: String,
    pub path: PathSummary,
    pub scaling: Vec<ScalingRow>,
    pub histograms: Vec<HistSummary>,
}

/// The full insight artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InsightReport {
    pub schema: String,
    pub studies: Vec<StudyInsight>,
}

impl InsightReport {
    /// A report over the given studies.
    pub fn new(studies: Vec<StudyInsight>) -> Self {
        InsightReport {
            schema: SCHEMA.to_owned(),
            studies,
        }
    }

    /// Internal consistency gate: every study's attribution must cover
    /// its wall interval exactly, scaling tables must be sane
    /// (positive times, `p=1` row present with speedup 1), and
    /// histogram percentiles must be ordered. `reproduce --insight`
    /// exits nonzero when this fails.
    pub fn passed(&self) -> bool {
        !self.studies.is_empty()
            && self.studies.iter().all(|s| {
                s.path.total_ns() == s.path.wall_ns
                    && s.path.wall_ns > 0
                    && s.scaling.iter().all(|r| r.time_s > 0.0 && r.speedup > 0.0)
                    && s.histograms
                        .iter()
                        .all(|h| h.p50_ns <= h.p90_ns && h.p90_ns <= h.p99_ns)
            })
    }

    /// Deterministic pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Parse an artifact previously written by [`InsightReport::to_json`].
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| format!("bad insight artifact: {e:?}"))
    }

    /// Human-readable rendering for the terminal.
    pub fn render(&self) -> String {
        let mut out = String::from("Insight study:\n");
        for s in &self.studies {
            out.push_str(&format!(
                "  {} — critical path {:.3} ms over {} steps:\n",
                s.study,
                s.path.wall_ns as f64 / 1e6,
                s.path.steps
            ));
            for (label, ns) in s.path.parts() {
                if ns == 0 {
                    continue;
                }
                out.push_str(&format!(
                    "    {:<8} {:>10.3} ms  ({:>5.1}%)\n",
                    label,
                    ns as f64 / 1e6,
                    100.0 * ns as f64 / s.path.wall_ns as f64
                ));
            }
            if !s.scaling.is_empty() {
                out.push_str("    p   time(s)   speedup  efficiency  karp-flatt\n");
                for r in &s.scaling {
                    out.push_str(&format!(
                        "    {:<3} {:>8.4}  {:>7.3}  {:>9.3}  {:>9.4}\n",
                        r.p, r.time_s, r.speedup, r.efficiency, r.karp_flatt
                    ));
                }
            }
            for h in &s.histograms {
                out.push_str(&format!(
                    "    hist {}/{:<16} n={:<6} p50={} p90={} p99={} max={} (ns)\n",
                    h.cat, h.name, h.count, h.p50_ns, h.p90_ns, h.p99_ns, h.max_ns
                ));
            }
        }
        out.push_str(&format!(
            "  verdict: {}\n",
            if self.passed() {
                "attribution covers every wall nanosecond"
            } else {
                "INCONSISTENT REPORT"
            }
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InsightReport {
        InsightReport::new(vec![StudyInsight {
            study: "module A".into(),
            path: PathSummary {
                wall_ns: 100,
                compute_ns: 60,
                barrier_ns: 30,
                lock_ns: 0,
                wire_ns: 0,
                idle_ns: 10,
                steps: 3,
            },
            scaling: vec![
                ScalingRow::new(1, 4.0, 1.0, 1.0, 0.0),
                ScalingRow::new(4, 1.25, 3.2, 0.8, 0.0833333),
            ],
            histograms: vec![HistSummary {
                cat: "shmem".into(),
                name: "barrier_wait".into(),
                count: 12,
                p50_ns: 10,
                p90_ns: 20,
                p99_ns: 30,
                max_ns: 31,
            }],
        }])
    }

    #[test]
    fn json_round_trips() {
        let r = sample();
        let back = InsightReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
        assert!(back.passed());
    }

    #[test]
    fn rounding_is_fixed_precision() {
        let row = ScalingRow::new(2, 1.0 / 3.0, 2.999999, 1.4999999, 0.123456789);
        assert_eq!(row.time_s, 0.3333);
        assert_eq!(row.speedup, 3.0);
        assert_eq!(row.efficiency, 1.5);
        assert_eq!(row.karp_flatt, 0.1235);
    }

    #[test]
    fn gate_rejects_uncovered_wall() {
        let mut r = sample();
        r.studies[0].path.idle_ns = 0; // 90 != 100
        assert!(!r.passed());
    }
}
