//! The perf-regression gate: compare two insight artifacts.
//!
//! `pdc-insight diff <baseline> <candidate>` compares studies by name
//! and flags **regressions** — the candidate got meaningfully worse —
//! with noise tolerance on two axes:
//!
//! * **relative**: a metric must grow by more than a threshold fraction
//!   (default 10% wall, 25% per-category, 50% tail latency — waits and
//!   tails are noisier than wall time);
//! * **absolute**: growth under an absolute floor (default 1 ms) never
//!   flags, however large the ratio — a 3 µs barrier wait tripling is
//!   measurement noise, not a regression.
//!
//! Improvements and disappearing metrics never flag; a study present in
//! the baseline but missing from the candidate does (losing a study is
//! how a gate silently rots). Exit status: `diff_reports(...).ok()`
//! false → nonzero.

use serde::{Deserialize, Serialize};

use crate::report::{InsightReport, StudyInsight};

/// Noise-tolerance knobs. Defaults are deliberately loose: the gate is
/// meant to catch a real 20% cliff, not to flap on scheduler jitter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Thresholds {
    /// Max tolerated relative growth of a study's critical-path wall
    /// time (fraction, e.g. `0.10` = 10%).
    pub wall_frac: f64,
    /// Max tolerated relative growth of one attribution category.
    pub category_frac: f64,
    /// Max tolerated relative growth of a histogram's p99.
    pub p99_frac: f64,
    /// Max tolerated relative drop of a scaling row's speedup.
    pub speedup_frac: f64,
    /// Absolute floor: nanosecond growth below this never flags.
    pub floor_ns: u64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            wall_frac: 0.10,
            category_frac: 0.25,
            p99_frac: 0.50,
            speedup_frac: 0.10,
            floor_ns: 1_000_000, // 1 ms
        }
    }
}

/// One flagged regression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Regression {
    pub study: String,
    /// What regressed (`"wall"`, `"barrier"`, `"hist shmem/barrier_wait p99"`,
    /// `"speedup p=4"`, `"missing study"`).
    pub metric: String,
    pub baseline: f64,
    pub candidate: f64,
    /// Relative change, positive = worse.
    pub change_frac: f64,
}

/// The outcome of one comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiffReport {
    pub thresholds: Thresholds,
    pub regressions: Vec<Regression>,
    /// Studies compared (names present in both artifacts).
    pub compared: Vec<String>,
}

impl DiffReport {
    /// The gate: true when nothing regressed and at least one study was
    /// actually compared (two disjoint artifacts must not pass).
    pub fn ok(&self) -> bool {
        self.regressions.is_empty() && !self.compared.is_empty()
    }

    /// Human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Insight diff: {} stud{} compared, {} regression{}\n",
            self.compared.len(),
            if self.compared.len() == 1 { "y" } else { "ies" },
            self.regressions.len(),
            if self.regressions.len() == 1 { "" } else { "s" },
        );
        for r in &self.regressions {
            out.push_str(&format!(
                "  REGRESSION [{}] {}: {:.4} -> {:.4} ({:+.1}%)\n",
                r.study,
                r.metric,
                r.baseline,
                r.candidate,
                100.0 * r.change_frac
            ));
        }
        out.push_str(&format!(
            "  verdict: {}\n",
            if self.ok() {
                "no regressions"
            } else {
                "GATE FAILS"
            }
        ));
        out
    }
}

/// Did `cand` grow past both the relative and absolute tolerance?
fn worse_ns(base: u64, cand: u64, frac: f64, floor_ns: u64) -> bool {
    cand > base
        && cand - base >= floor_ns
        && (base == 0 || (cand - base) as f64 > frac * base as f64)
}

fn rel(base: f64, cand: f64) -> f64 {
    if base == 0.0 {
        if cand == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (cand - base) / base
    }
}

fn diff_study(base: &StudyInsight, cand: &StudyInsight, t: &Thresholds, out: &mut Vec<Regression>) {
    let push = |out: &mut Vec<Regression>, metric: String, b: f64, c: f64| {
        out.push(Regression {
            study: base.study.clone(),
            metric,
            baseline: b,
            candidate: c,
            change_frac: rel(b, c),
        });
    };

    if worse_ns(
        base.path.wall_ns,
        cand.path.wall_ns,
        t.wall_frac,
        t.floor_ns,
    ) {
        push(
            out,
            "wall_ns".into(),
            base.path.wall_ns as f64,
            cand.path.wall_ns as f64,
        );
    }
    for ((label, b_ns), (_, c_ns)) in base.path.parts().into_iter().zip(cand.path.parts()) {
        if worse_ns(b_ns, c_ns, t.category_frac, t.floor_ns) {
            push(out, format!("{label}_ns"), b_ns as f64, c_ns as f64);
        }
    }
    for b_row in &base.scaling {
        if let Some(c_row) = cand.scaling.iter().find(|c| c.p == b_row.p) {
            let drop = rel(b_row.speedup, c_row.speedup);
            if drop < -t.speedup_frac {
                push(
                    out,
                    format!("speedup p={}", b_row.p),
                    b_row.speedup,
                    c_row.speedup,
                );
                // Report the drop as positive "worse".
                out.last_mut().expect("just pushed").change_frac = -drop;
            }
        }
    }
    for b_h in &base.histograms {
        if let Some(c_h) = cand
            .histograms
            .iter()
            .find(|c| c.cat == b_h.cat && c.name == b_h.name)
        {
            if worse_ns(b_h.p99_ns, c_h.p99_ns, t.p99_frac, t.floor_ns) {
                push(
                    out,
                    format!("hist {}/{} p99_ns", b_h.cat, b_h.name),
                    b_h.p99_ns as f64,
                    c_h.p99_ns as f64,
                );
            }
        }
    }
}

/// Compare a candidate artifact against a baseline.
pub fn diff_reports(base: &InsightReport, cand: &InsightReport, t: Thresholds) -> DiffReport {
    let mut regressions = Vec::new();
    let mut compared = Vec::new();
    for b in &base.studies {
        match cand.studies.iter().find(|c| c.study == b.study) {
            Some(c) => {
                compared.push(b.study.clone());
                diff_study(b, c, &t, &mut regressions);
            }
            None => regressions.push(Regression {
                study: b.study.clone(),
                metric: "missing study".into(),
                baseline: 1.0,
                candidate: 0.0,
                change_frac: f64::INFINITY,
            }),
        }
    }
    DiffReport {
        thresholds: t,
        regressions,
        compared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{HistSummary, PathSummary, ScalingRow};

    fn study(wall_ms: u64, barrier_ms: u64, speedup4: f64, p99_us: u64) -> StudyInsight {
        let wall_ns = wall_ms * 1_000_000;
        let barrier_ns = barrier_ms * 1_000_000;
        StudyInsight {
            study: "module A".into(),
            path: PathSummary {
                wall_ns,
                compute_ns: wall_ns - barrier_ns,
                barrier_ns,
                lock_ns: 0,
                wire_ns: 0,
                idle_ns: 0,
                steps: 4,
            },
            scaling: vec![
                ScalingRow::new(1, 4.0, 1.0, 1.0, 0.0),
                ScalingRow::new(4, 4.0 / speedup4, speedup4, speedup4 / 4.0, 0.05),
            ],
            histograms: vec![HistSummary {
                cat: "shmem".into(),
                name: "barrier_wait".into(),
                count: 100,
                p50_ns: p99_us * 300,
                p90_ns: p99_us * 800,
                p99_ns: p99_us * 1_000,
                max_ns: p99_us * 1_100,
            }],
        }
    }

    #[test]
    fn identical_reports_pass() {
        let r = InsightReport::new(vec![study(100, 20, 3.2, 5_000)]);
        let d = diff_reports(&r, &r, Thresholds::default());
        assert!(d.ok(), "{}", d.render());
        assert_eq!(d.compared, vec!["module A"]);
    }

    #[test]
    fn twenty_percent_wall_regression_fails() {
        let base = InsightReport::new(vec![study(100, 20, 3.2, 5_000)]);
        let cand = InsightReport::new(vec![study(120, 20, 3.2, 5_000)]);
        let d = diff_reports(&base, &cand, Thresholds::default());
        assert!(!d.ok());
        assert!(d.regressions.iter().any(|r| r.metric == "wall_ns"), "{d:?}");
    }

    #[test]
    fn small_absolute_growth_is_noise() {
        // Barrier triples but only grows by 200 µs — under the 1 ms
        // floor, so tolerated.
        let base = InsightReport::new(vec![study(100, 0, 3.2, 100)]);
        let mut cand = InsightReport::new(vec![study(100, 0, 3.2, 300)]);
        cand.studies[0].path.barrier_ns = 200_000;
        cand.studies[0].path.compute_ns -= 200_000;
        let d = diff_reports(&base, &cand, Thresholds::default());
        assert!(d.ok(), "{}", d.render());
    }

    #[test]
    fn speedup_drop_and_missing_study_fail() {
        let base = InsightReport::new(vec![study(100, 20, 3.2, 5_000)]);
        let cand = InsightReport::new(vec![study(100, 20, 2.0, 5_000)]);
        let d = diff_reports(&base, &cand, Thresholds::default());
        assert!(d.regressions.iter().any(|r| r.metric == "speedup p=4"));

        let empty = InsightReport::new(vec![]);
        let d = diff_reports(&base, &empty, Thresholds::default());
        assert!(!d.ok());
        assert_eq!(d.regressions[0].metric, "missing study");
        // And two disjoint artifacts must not silently pass.
        assert!(!diff_reports(&empty, &empty, Thresholds::default()).ok());
    }

    #[test]
    fn improvements_never_flag() {
        let base = InsightReport::new(vec![study(100, 20, 3.2, 5_000)]);
        let cand = InsightReport::new(vec![study(50, 5, 3.9, 1_000)]);
        assert!(diff_reports(&base, &cand, Thresholds::default()).ok());
    }
}
