//! The cross-rank happens-before DAG and its critical path.
//!
//! A trace is a set of *lanes* — one per `(pid, tid)` — each holding
//! nested spans. Three kinds of cross-lane edges make the lanes a DAG:
//!
//! * **send → recv**: a `recv` span cannot end before its matched
//!   `send` span ended. Matching is by `(src, dst, tag)` in program
//!   order (k-th send to k-th recv), the non-overtaking guarantee both
//!   fabrics provide.
//! * **collective**: a collective-entry span (`mpc` collectives,
//!   `shmem` `barrier_wait`) cannot release before the *last* overlapping
//!   participant arrives — every participant's release depends on the
//!   latest arrival.
//! * **program order**: within a lane, everything depends on what the
//!   lane did before.
//!
//! The **critical path** is extracted by walking backward from the
//! globally last span end: at each point the walk asks "what was this
//! lane waiting on?", follows the corresponding edge, and attributes
//! the consumed interval to one of four categories — [`Category::Compute`]
//! (the lane was doing work), [`Category::Barrier`] (waiting at a
//! barrier/collective), [`Category::Lock`] (waiting for a mutual-
//! exclusion lock), [`Category::Wire`] (message transfer). Intervals
//! covered by no span at all are [`Category::Idle`] — untraced time.
//! The per-category sums answer the instructor question the dashboard
//! is built around: *where did my speedup go?*

use std::collections::BTreeMap;

use pdc_analyze::traceio::{LineKind, TraceLine, COLLECTIVE_NAMES};
use serde::Serialize;

/// What an interval on the critical path was spent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum Category {
    /// The lane was executing (any span not classified below).
    Compute,
    /// Waiting at a barrier or collective for the last arrival.
    Barrier,
    /// Waiting for a mutual-exclusion lock.
    Lock,
    /// Message transfer: send/recv spans and everything in `net`.
    Wire,
    /// No span covered the interval — untraced time.
    Idle,
}

impl Category {
    /// Classify a span by `(category, name)`.
    pub fn of(cat: &str, name: &str) -> Category {
        match (cat, name) {
            ("shmem", "barrier_wait") => Category::Barrier,
            ("shmem", "lock_wait") | ("shmem", "critical") => Category::Lock,
            ("mpc", "send") | ("mpc", "recv") | ("mpc", "ssend") => Category::Wire,
            ("mpc", name) if COLLECTIVE_NAMES.contains(&name) => Category::Barrier,
            ("net", _) => Category::Wire,
            _ => Category::Compute,
        }
    }

    /// Stable lower-case label (JSON field names, flamegraph frames).
    pub fn label(self) -> &'static str {
        match self {
            Category::Compute => "compute",
            Category::Barrier => "barrier",
            Category::Lock => "lock",
            Category::Wire => "wire",
            Category::Idle => "idle",
        }
    }
}

/// One execution lane: a thread of one process.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Lane {
    pub pid: Option<u64>,
    pub tid: u64,
}

/// One step of the critical path, chronological.
#[derive(Debug, Clone, Serialize)]
pub struct PathStep {
    /// Index into [`CriticalPath::lanes`].
    pub lane: usize,
    /// Span name the interval was inside (`"-"` for idle gaps).
    pub name: String,
    pub category: Category,
    pub start_ns: u64,
    pub end_ns: u64,
}

/// Per-category wall-time attribution, summing to `total_ns`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct Breakdown {
    pub compute_ns: u64,
    pub barrier_ns: u64,
    pub lock_ns: u64,
    pub wire_ns: u64,
    pub idle_ns: u64,
}

impl Breakdown {
    fn add(&mut self, category: Category, ns: u64) {
        match category {
            Category::Compute => self.compute_ns += ns,
            Category::Barrier => self.barrier_ns += ns,
            Category::Lock => self.lock_ns += ns,
            Category::Wire => self.wire_ns += ns,
            Category::Idle => self.idle_ns += ns,
        }
    }

    /// Sum over all categories.
    pub fn total_ns(&self) -> u64 {
        self.compute_ns + self.barrier_ns + self.lock_ns + self.wire_ns + self.idle_ns
    }
}

/// The extracted critical path of one trace.
#[derive(Debug, Clone, Serialize)]
pub struct CriticalPath {
    /// Wall interval the path spans: global first span start to global
    /// last span end.
    pub wall_ns: u64,
    pub breakdown: Breakdown,
    pub lanes: Vec<Lane>,
    /// Chronological steps; contiguous in time, `steps` sum to
    /// `breakdown` exactly.
    pub steps: Vec<PathStep>,
}

/// One recorded span, flattened out of a [`TraceLine`].
#[derive(Debug, Clone)]
struct SpanRec {
    lane: usize,
    name: String,
    cat: String,
    start: u64,
    end: u64,
    /// `(src, dst, tag)` for send/recv matching.
    channel: Option<(u64, u64, i64)>,
}

/// A leaf interval: the innermost span covering `[start, end)`.
#[derive(Debug, Clone, Copy)]
struct Seg {
    span: usize,
    start: u64,
    end: u64,
}

/// Extract the critical path from parsed trace lines. Returns `None`
/// when the trace holds no spans at all.
pub fn critical_path(lines: &[TraceLine]) -> Option<CriticalPath> {
    let mut lanes: Vec<Lane> = Vec::new();
    let mut lane_of: BTreeMap<(Option<u64>, u64), usize> = BTreeMap::new();
    let mut spans: Vec<SpanRec> = Vec::new();

    for line in lines {
        let LineKind::Span { dur_ns } = line.kind else {
            continue;
        };
        let key = (line.pid, line.tid);
        let lane = *lane_of.entry(key).or_insert_with(|| {
            lanes.push(Lane {
                pid: key.0,
                tid: key.1,
            });
            lanes.len() - 1
        });
        let channel = match line.name.as_str() {
            "send" | "recv" if line.cat == "mpc" => {
                match (
                    line.arg_u64("src"),
                    line.arg_u64("dst"),
                    line.arg_i64("tag"),
                ) {
                    (Some(src), Some(dst), Some(tag)) => Some((src, dst, tag)),
                    _ => None,
                }
            }
            _ => None,
        };
        spans.push(SpanRec {
            lane,
            name: line.name.clone(),
            cat: line.cat.clone(),
            start: line.ts_ns,
            end: line.ts_ns.saturating_add(dur_ns),
            channel,
        });
    }
    if spans.is_empty() {
        return None;
    }

    // send -> recv matching: k-th send on a channel pairs with the k-th
    // recv, in start order (non-overtaking delivery).
    let mut sends: BTreeMap<(u64, u64, i64), Vec<usize>> = BTreeMap::new();
    let mut recvs: BTreeMap<(u64, u64, i64), Vec<usize>> = BTreeMap::new();
    let mut by_start: Vec<usize> = (0..spans.len()).collect();
    by_start.sort_by_key(|&i| (spans[i].start, spans[i].end));
    for &i in &by_start {
        if let Some(key) = spans[i].channel {
            match spans[i].name.as_str() {
                "send" => sends.entry(key).or_default().push(i),
                "recv" => recvs.entry(key).or_default().push(i),
                _ => {}
            }
        }
    }
    // recv span index -> matched send span index
    let mut send_of: BTreeMap<usize, usize> = BTreeMap::new();
    for (key, rs) in &recvs {
        if let Some(ss) = sends.get(key) {
            for (r, s) in rs.iter().zip(ss) {
                send_of.insert(*r, *s);
            }
        }
    }

    // Collective instances: spans of the same collective name whose
    // intervals mutually overlap are one rendezvous; the instance
    // releases when its last participant arrives. For each collective
    // span, record that release time and the last-arriving span.
    let mut release_of: BTreeMap<usize, (u64, usize)> = BTreeMap::new();
    {
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for &i in &by_start {
            let s = &spans[i];
            if Category::of(&s.cat, &s.name) == Category::Barrier {
                by_name.entry(s.name.as_str()).or_default().push(i);
            }
        }
        for (_, idxs) in by_name {
            // Sweep in start order, grouping while intervals overlap the
            // instance's common window.
            let mut group: Vec<usize> = Vec::new();
            let mut window_end = 0u64;
            let flush = |group: &mut Vec<usize>, out: &mut BTreeMap<usize, (u64, usize)>| {
                if group.is_empty() {
                    return;
                }
                let last = *group
                    .iter()
                    .max_by_key(|&&i| (spans[i].start, i))
                    .expect("non-empty group");
                for &i in group.iter() {
                    out.insert(i, (spans[last].start, last));
                }
                group.clear();
            };
            for i in idxs {
                if !group.is_empty() && spans[i].start >= window_end {
                    flush(&mut group, &mut release_of);
                }
                window_end = if group.is_empty() {
                    spans[i].end
                } else {
                    window_end.min(spans[i].end)
                };
                group.push(i);
            }
            flush(&mut group, &mut release_of);
        }
    }

    // Flatten each lane's nested spans into leaf segments: the
    // innermost span owns each instant.
    let mut per_lane: Vec<Vec<usize>> = vec![Vec::new(); lanes.len()];
    for &i in &by_start {
        per_lane[spans[i].lane].push(i);
    }
    let mut lane_segs: Vec<Vec<Seg>> = Vec::with_capacity(lanes.len());
    for lane_spans in &per_lane {
        lane_segs.push(leaf_segments(&spans, lane_spans));
    }

    let wall_start = spans.iter().map(|s| s.start).min().expect("spans nonempty");
    let wall_end = spans.iter().map(|s| s.end).max().expect("spans nonempty");

    // Backward walk from the lane holding the global end.
    let mut lane = spans
        .iter()
        .enumerate()
        .max_by_key(|(i, s)| (s.end, *i))
        .map(|(_, s)| s.lane)
        .expect("spans nonempty");
    let mut cursor = wall_end;
    let mut breakdown = Breakdown::default();
    let mut steps_rev: Vec<PathStep> = Vec::new();
    let step = |lane: usize,
                name: &str,
                category: Category,
                start: u64,
                end: u64,
                breakdown: &mut Breakdown,
                steps_rev: &mut Vec<PathStep>| {
        if end > start {
            breakdown.add(category, end - start);
            steps_rev.push(PathStep {
                lane,
                name: name.to_owned(),
                category,
                start_ns: start,
                end_ns: end,
            });
        }
    };

    while cursor > wall_start {
        let segs = &lane_segs[lane];
        // Latest segment starting strictly before the cursor.
        let idx = segs.partition_point(|s| s.start < cursor);
        if idx == 0 {
            // Nothing earlier on this lane: the remainder is idle.
            step(
                lane,
                "-",
                Category::Idle,
                wall_start,
                cursor,
                &mut breakdown,
                &mut steps_rev,
            );
            break;
        }
        let seg = segs[idx - 1];
        if seg.end < cursor {
            // Gap between spans on this lane.
            step(
                lane,
                "-",
                Category::Idle,
                seg.end,
                cursor,
                &mut breakdown,
                &mut steps_rev,
            );
            cursor = seg.end;
            continue;
        }
        let sp = &spans[seg.span];
        let category = Category::of(&sp.cat, &sp.name);

        // recv: the wait ends when the matched send's data arrived.
        if sp.name == "recv" && sp.cat == "mpc" {
            if let Some(&send_idx) = send_of.get(&seg.span) {
                let send = &spans[send_idx];
                if send.end < cursor {
                    let from = seg.start.max(send.end.min(cursor));
                    step(
                        lane,
                        &sp.name,
                        Category::Wire,
                        from,
                        cursor,
                        &mut breakdown,
                        &mut steps_rev,
                    );
                    if send.end >= seg.start && send.lane != lane {
                        lane = send.lane;
                        cursor = send.end;
                    } else {
                        cursor = from;
                    }
                    continue;
                }
            }
        }

        // Barrier/collective: the wait ends at the last arrival.
        if category == Category::Barrier {
            if let Some(&(release, last)) = release_of.get(&seg.span) {
                let release = release.min(cursor);
                if release > seg.start && spans[last].lane != lane {
                    step(
                        lane,
                        &sp.name,
                        Category::Barrier,
                        release,
                        cursor,
                        &mut breakdown,
                        &mut steps_rev,
                    );
                    lane = spans[last].lane;
                    cursor = release;
                    continue;
                }
            }
        }

        // Default: consume the covered interval on this lane.
        step(
            lane,
            &sp.name,
            category,
            seg.start,
            cursor,
            &mut breakdown,
            &mut steps_rev,
        );
        cursor = seg.start;
    }

    steps_rev.reverse();
    Some(CriticalPath {
        wall_ns: wall_end - wall_start,
        breakdown,
        lanes,
        steps: steps_rev,
    })
}

/// Flatten one lane's nested spans (sorted by start) into leaf
/// segments: each instant belongs to the innermost span covering it.
/// Assumes proper nesting within a lane (RAII spans guarantee it).
fn leaf_segments(spans: &[SpanRec], lane_spans: &[usize]) -> Vec<Seg> {
    let mut out: Vec<Seg> = Vec::new();
    // (span index, emit watermark)
    let mut stack: Vec<(usize, u64)> = Vec::new();
    let emit = |span: usize, start: u64, end: u64, out: &mut Vec<Seg>| {
        if end > start {
            out.push(Seg { span, start, end });
        }
    };
    for &i in lane_spans {
        // Close spans that ended before this one starts.
        while let Some(&(top, mark)) = stack.last() {
            if spans[top].end <= spans[i].start {
                emit(top, mark, spans[top].end, &mut out);
                stack.pop();
                if let Some(parent) = stack.last_mut() {
                    parent.1 = spans[top].end;
                }
            } else {
                break;
            }
        }
        // The parent owns the run-up to this child.
        if let Some(&mut (top, ref mut mark)) = stack.last_mut() {
            emit(top, *mark, spans[i].start, &mut out);
            *mark = spans[i].start;
        }
        stack.push((i, spans[i].start));
    }
    while let Some((top, mark)) = stack.pop() {
        emit(top, mark, spans[top].end, &mut out);
        if let Some(parent) = stack.last_mut() {
            parent.1 = spans[top].end;
        }
    }
    out.sort_by_key(|s| s.start);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_analyze::traceio::parse_jsonl;

    #[test]
    fn single_lane_is_all_compute() {
        let jsonl = r#"
{"kind":"span","cat":"app","name":"work","ts_ns":0,"tid":1,"dur_ns":100}
{"kind":"span","cat":"app","name":"more","ts_ns":100,"tid":1,"dur_ns":50}
"#;
        let cp = critical_path(&parse_jsonl(jsonl)).unwrap();
        assert_eq!(cp.wall_ns, 150);
        assert_eq!(cp.breakdown.compute_ns, 150);
        assert_eq!(cp.breakdown.total_ns(), cp.wall_ns);
        assert_eq!(cp.steps.len(), 2);
    }

    #[test]
    fn nested_spans_attribute_to_innermost() {
        // outer [0,100) with an inner barrier_wait [40,60): the leaf
        // sweep must carve outer into [0,40) + [60,100) compute and the
        // middle into barrier.
        let jsonl = r#"
{"kind":"span","cat":"shmem","name":"parallel","ts_ns":0,"tid":1,"dur_ns":100}
{"kind":"span","cat":"shmem","name":"barrier_wait","ts_ns":40,"tid":1,"dur_ns":20}
"#;
        let cp = critical_path(&parse_jsonl(jsonl)).unwrap();
        assert_eq!(cp.breakdown.compute_ns, 80);
        assert_eq!(cp.breakdown.barrier_ns, 20);
        assert_eq!(cp.breakdown.total_ns(), 100);
    }

    #[test]
    fn gap_between_spans_is_idle() {
        let jsonl = r#"
{"kind":"span","cat":"app","name":"a","ts_ns":0,"tid":1,"dur_ns":10}
{"kind":"span","cat":"app","name":"b","ts_ns":30,"tid":1,"dur_ns":10}
"#;
        let cp = critical_path(&parse_jsonl(jsonl)).unwrap();
        assert_eq!(cp.breakdown.idle_ns, 20);
        assert_eq!(cp.breakdown.compute_ns, 20);
    }

    #[test]
    fn recv_follows_send_edge_across_lanes() {
        // Lane 1 computes 0..100 then sends (send span 100..110).
        // Lane 2 posts recv at 10, blocked until the send lands (recv
        // span 10..115), then finishes with compute 115..150.
        // Critical path: compute 100 (lane 1) + send 10 + wire 5 +
        // compute 35 (lane 2) = 150 = wall.
        let jsonl = r#"
{"kind":"span","cat":"app","name":"produce","ts_ns":0,"tid":1,"dur_ns":100}
{"kind":"span","cat":"mpc","name":"send","ts_ns":100,"tid":1,"dur_ns":10,"args":{"src":0,"dst":1,"tag":7}}
{"kind":"span","cat":"mpc","name":"recv","ts_ns":10,"tid":2,"dur_ns":105,"args":{"src":0,"dst":1,"tag":7}}
{"kind":"span","cat":"app","name":"consume","ts_ns":115,"tid":2,"dur_ns":35}
"#;
        let cp = critical_path(&parse_jsonl(jsonl)).unwrap();
        assert_eq!(cp.wall_ns, 150);
        assert_eq!(cp.breakdown.total_ns(), 150);
        assert_eq!(cp.breakdown.compute_ns, 135);
        assert_eq!(cp.breakdown.wire_ns, 15);
        assert_eq!(cp.breakdown.idle_ns, 0);
        // The path changes lanes exactly once, at the send edge.
        let lanes_on_path: Vec<usize> = cp.steps.iter().map(|s| s.lane).collect();
        let first = lanes_on_path[0];
        let last = *lanes_on_path.last().unwrap();
        assert_ne!(first, last, "path must cross the send->recv edge");
    }

    #[test]
    fn barrier_waits_for_last_arrival() {
        // Three lanes enter a barrier; lane 3 arrives last at t=80.
        // Lanes 1/2 wait from 20/40 until 80; all release at 90.
        // Path: lane3 compute 0..80, barrier 80..90 — the early
        // arrivers' waits are NOT on the critical path.
        let jsonl = r#"
{"kind":"span","cat":"app","name":"w1","ts_ns":0,"tid":1,"dur_ns":20}
{"kind":"span","cat":"shmem","name":"barrier_wait","ts_ns":20,"tid":1,"dur_ns":70}
{"kind":"span","cat":"app","name":"w2","ts_ns":0,"tid":2,"dur_ns":40}
{"kind":"span","cat":"shmem","name":"barrier_wait","ts_ns":40,"tid":2,"dur_ns":50}
{"kind":"span","cat":"app","name":"w3","ts_ns":0,"tid":3,"dur_ns":80}
{"kind":"span","cat":"shmem","name":"barrier_wait","ts_ns":80,"tid":3,"dur_ns":10}
"#;
        let cp = critical_path(&parse_jsonl(jsonl)).unwrap();
        assert_eq!(cp.wall_ns, 90);
        assert_eq!(cp.breakdown.total_ns(), 90);
        assert_eq!(cp.breakdown.compute_ns, 80);
        assert_eq!(cp.breakdown.barrier_ns, 10);
    }

    #[test]
    fn empty_trace_has_no_path() {
        assert!(critical_path(&[]).is_none());
        let only_counters =
            parse_jsonl(r#"{"kind":"counter","cat":"x","name":"c","ts_ns":5,"tid":1,"delta":1}"#);
        assert!(critical_path(&only_counters).is_none());
    }
}
