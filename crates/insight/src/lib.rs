//! # pdc-insight: cross-rank trace analytics
//!
//! Offline analytics over `pdc-trace` JSONL exports, closing the loop
//! the course's observability layer opened: `pdc-trace` records,
//! `pdc-analyze` checks correctness (races, deadlocks, collective
//! mismatches), and this crate explains **performance** — the question
//! every speedup table raises but cannot answer: *where did the time
//! go?*
//!
//! Four pieces:
//!
//! * [`dag`] — reconstructs the cross-rank happens-before DAG from
//!   spans plus communication edges (send→recv matching, collective
//!   rendezvous) and extracts the **critical path**, attributing every
//!   nanosecond of the wall interval to compute, barrier wait, lock
//!   contention, wire transfer, or untraced idle time.
//! * [`hist`][crate::histset] — folds the per-process
//!   `pdc_trace::Histogram` lines of a merged trace back into mergeable
//!   percentile summaries (p50/p90/p99) per metric.
//! * [`flame`] — collapsed-stack flamegraph text (`a;b;c count`
//!   format, directly loadable by standard flamegraph tooling) built
//!   from each lane's span nesting.
//! * [`diff`] — a noise-tolerant perf-regression gate comparing two
//!   insight reports; [`report`] carries the serializable artifact and
//!   [`dashboard`] renders the self-contained instructor HTML.
//!
//! Everything here is deterministic given its input bytes: maps are
//! `BTreeMap`s, floats are formatted through fixed-precision helpers,
//! and no wall clock is consulted.

pub mod dag;
pub mod dashboard;
pub mod diff;
pub mod flame;
pub mod histset;
pub mod report;

pub use dag::{critical_path, Breakdown, Category, CriticalPath};
pub use diff::{diff_reports, DiffReport, Thresholds};
pub use flame::collapsed_stacks;
pub use histset::HistogramSet;
pub use report::{HistSummary, InsightReport, PathSummary, ScalingRow, StudyInsight};
