//! `pdc-insight` — offline trace analytics at the shell.
//!
//! ```text
//! pdc-insight analyze  TRACE.jsonl...            critical path + histograms
//! pdc-insight flame    TRACE.jsonl... [-o FILE]  collapsed-stack flamegraph text
//! pdc-insight dashboard REPORT.json [TRACE...] -o FILE
//!                                                self-contained HTML dashboard
//! pdc-insight diff     BASE.json CAND.json [--wall-pct N] [--category-pct N]
//!                      [--p99-pct N] [--speedup-pct N] [--floor-ms N]
//!                                                perf gate: nonzero on regression
//! ```
//!
//! Multiple trace files are merged before analysis (the per-rank files
//! a distributed study writes are one logical trace). Argument parsing
//! is by hand, like `reproduce` — the workspace takes no CLI deps.

use std::process::ExitCode;

use pdc_analyze::traceio::{parse_jsonl, TraceLine};
use pdc_insight::report::hist_summaries;
use pdc_insight::{
    collapsed_stacks, critical_path, dashboard, diff_reports, HistogramSet, InsightReport,
    Thresholds,
};

fn usage() -> ! {
    eprintln!(
        "usage: pdc-insight analyze TRACE.jsonl...\n\
         \x20      pdc-insight flame TRACE.jsonl... [-o FILE]\n\
         \x20      pdc-insight dashboard REPORT.json [TRACE.jsonl...] -o FILE\n\
         \x20      pdc-insight diff BASE.json CAND.json [--wall-pct N] [--category-pct N]\n\
         \x20                       [--p99-pct N] [--speedup-pct N] [--floor-ms N]"
    );
    std::process::exit(2);
}

fn read(path: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pdc-insight: cannot read {path}: {e}");
            std::process::exit(2);
        }
    }
}

/// Parse and merge trace files into one line stream.
fn load_traces(paths: &[String]) -> Vec<TraceLine> {
    let mut lines = Vec::new();
    for p in paths {
        lines.extend(parse_jsonl(&read(p)));
    }
    lines
}

fn pct_arg(args: &mut std::vec::IntoIter<String>, flag: &str) -> f64 {
    match args.next().and_then(|v| v.parse::<f64>().ok()) {
        Some(v) if v >= 0.0 => v / 100.0,
        _ => {
            eprintln!("pdc-insight: {flag} needs a non-negative percent");
            std::process::exit(2);
        }
    }
}

fn cmd_analyze(traces: Vec<String>) -> ExitCode {
    if traces.is_empty() {
        usage();
    }
    let lines = load_traces(&traces);
    match critical_path(&lines) {
        Some(cp) => {
            println!(
                "critical path: {:.3} ms over {} steps across {} lanes",
                cp.wall_ns as f64 / 1e6,
                cp.steps.len(),
                cp.lanes.len()
            );
            let b = cp.breakdown;
            for (label, ns) in [
                ("compute", b.compute_ns),
                ("barrier", b.barrier_ns),
                ("lock", b.lock_ns),
                ("wire", b.wire_ns),
                ("idle", b.idle_ns),
            ] {
                if ns > 0 {
                    println!(
                        "  {label:<8} {:>12.3} ms  ({:>5.1}%)",
                        ns as f64 / 1e6,
                        100.0 * ns as f64 / cp.wall_ns as f64
                    );
                }
            }
        }
        None => println!("no spans in trace — nothing to analyze"),
    }
    let hists = HistogramSet::from_lines(&lines);
    for h in hist_summaries(&hists) {
        println!(
            "hist {}/{:<16} n={:<7} p50={}ns p90={}ns p99={}ns max={}ns",
            h.cat, h.name, h.count, h.p50_ns, h.p90_ns, h.p99_ns, h.max_ns
        );
    }
    ExitCode::SUCCESS
}

fn cmd_flame(mut rest: Vec<String>) -> ExitCode {
    let mut out_path = None;
    if let Some(pos) = rest.iter().position(|a| a == "-o") {
        if pos + 1 >= rest.len() {
            usage();
        }
        out_path = Some(rest.remove(pos + 1));
        rest.remove(pos);
    }
    if rest.is_empty() {
        usage();
    }
    let text = collapsed_stacks(&load_traces(&rest));
    match out_path {
        Some(p) => {
            if let Err(e) = std::fs::write(&p, &text) {
                eprintln!("pdc-insight: cannot write {p}: {e}");
                return ExitCode::from(2);
            }
            eprintln!("wrote {} stacks to {p}", text.lines().count());
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}

fn cmd_dashboard(mut rest: Vec<String>) -> ExitCode {
    let Some(pos) = rest.iter().position(|a| a == "-o") else {
        usage();
    };
    if pos + 1 >= rest.len() {
        usage();
    }
    let out_path = rest.remove(pos + 1);
    rest.remove(pos);
    if rest.is_empty() {
        usage();
    }
    let report = match InsightReport::from_json(&read(&rest[0])) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pdc-insight: {e}");
            return ExitCode::from(2);
        }
    };
    let traces: Vec<(String, Vec<TraceLine>)> = rest[1..]
        .iter()
        .map(|p| {
            let label = std::path::Path::new(p)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| p.clone());
            (label, parse_jsonl(&read(p)))
        })
        .collect();
    let html = dashboard::render(&report, &traces);
    if let Err(e) = std::fs::write(&out_path, &html) {
        eprintln!("pdc-insight: cannot write {out_path}: {e}");
        return ExitCode::from(2);
    }
    eprintln!("wrote dashboard to {out_path}");
    ExitCode::SUCCESS
}

fn cmd_diff(rest: Vec<String>) -> ExitCode {
    let mut t = Thresholds::default();
    let mut paths = Vec::new();
    let mut args = rest.into_iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--wall-pct" => t.wall_frac = pct_arg(&mut args, "--wall-pct"),
            "--category-pct" => t.category_frac = pct_arg(&mut args, "--category-pct"),
            "--p99-pct" => t.p99_frac = pct_arg(&mut args, "--p99-pct"),
            "--speedup-pct" => t.speedup_frac = pct_arg(&mut args, "--speedup-pct"),
            "--floor-ms" => {
                t.floor_ns = (pct_arg(&mut args, "--floor-ms") * 100.0 * 1e6) as u64;
            }
            _ if a.starts_with('-') => usage(),
            _ => paths.push(a),
        }
    }
    let [base_path, cand_path] = paths.as_slice() else {
        usage();
    };
    let load = |p: &str| match InsightReport::from_json(&read(p)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pdc-insight: {p}: {e}");
            std::process::exit(2);
        }
    };
    let d = diff_reports(&load(base_path), &load(cand_path), t);
    print!("{}", d.render());
    if d.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let cmd = args.remove(0);
    match cmd.as_str() {
        "analyze" => cmd_analyze(args),
        "flame" => cmd_flame(args),
        "dashboard" => cmd_dashboard(args),
        "diff" => cmd_diff(args),
        _ => usage(),
    }
}
