//! The self-contained instructor dashboard.
//!
//! One HTML file, no external assets, openable from a course LMS or a
//! CI artifact tab: per-study critical-path bars, scaling tables
//! (speedup / efficiency / Karp–Flatt), histogram percentiles, and —
//! when raw traces are supplied — per-rank SVG timelines with injected
//! faults overlaid as markers on the traffic they perturbed.
//!
//! Rendering is deterministic for given inputs: lanes sort by
//! `(pid, tid)`, colors are a fixed category palette, floats go through
//! fixed-precision formatting.

use std::fmt::Write as _;

use pdc_analyze::traceio::{LineKind, TraceLine};

use crate::dag::Category;
use crate::report::InsightReport;

/// Cap on rects per timeline; beyond it the densest spans are dropped
/// (shortest first) and the drop is noted in the legend.
const MAX_RECTS: usize = 1500;

/// Fixed category palette (also the critical-path bar colors).
fn color(cat: Category) -> &'static str {
    match cat {
        Category::Compute => "#4c9f70",
        Category::Barrier => "#e0a63e",
        Category::Lock => "#c0504d",
        Category::Wire => "#4f81bd",
        Category::Idle => "#b8b8b8",
    }
}

fn esc(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
}

fn ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

/// Render the dashboard. `traces` pairs a label (study name) with its
/// parsed merged trace; pass `&[]` to skip the timeline sections.
pub fn render(report: &InsightReport, traces: &[(String, Vec<TraceLine>)]) -> String {
    let mut h = String::with_capacity(32 * 1024);
    h.push_str(
        "<!doctype html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\n\
         <title>pdc-insight dashboard</title>\n<style>\n\
         body{font:14px/1.45 system-ui,sans-serif;margin:2rem auto;max-width:70rem;color:#222}\n\
         h1{font-size:1.5rem} h2{font-size:1.2rem;margin-top:2rem;border-bottom:1px solid #ddd}\n\
         table{border-collapse:collapse;margin:.6rem 0} td,th{border:1px solid #ccc;padding:.25rem .6rem;text-align:right}\n\
         th{background:#f3f3f3} td:first-child,th:first-child{text-align:left}\n\
         .bar{display:flex;height:1.4rem;border:1px solid #999;max-width:44rem;margin:.4rem 0}\n\
         .bar div{height:100%} .legend span{display:inline-block;margin-right:1rem}\n\
         .legend i{display:inline-block;width:.8rem;height:.8rem;margin-right:.3rem;vertical-align:-1px}\n\
         svg{border:1px solid #ccc;background:#fafafa} .note{color:#777;font-size:.85rem}\n\
         </style></head><body>\n<h1>pdc-insight — where did my speedup go?</h1>\n",
    );

    // Legend once, up top.
    h.push_str("<p class=\"legend\">");
    for cat in [
        Category::Compute,
        Category::Barrier,
        Category::Lock,
        Category::Wire,
        Category::Idle,
    ] {
        let _ = write!(
            h,
            "<span><i style=\"background:{}\"></i>{}</span>",
            color(cat),
            cat.label()
        );
    }
    h.push_str(
        "<span><i style=\"background:#d4343a;border-radius:50%\"></i>injected fault</span></p>\n",
    );

    for s in &report.studies {
        h.push_str("<h2>");
        esc(&s.study, &mut h);
        h.push_str("</h2>\n");

        // Critical-path attribution bar.
        let _ = write!(
            h,
            "<p>Critical path: <b>{} ms</b> over {} steps.</p>\n<div class=\"bar\">",
            ms(s.path.wall_ns),
            s.path.steps
        );
        for (label, ns) in s.path.parts() {
            if ns == 0 || s.path.wall_ns == 0 {
                continue;
            }
            let pct = 100.0 * ns as f64 / s.path.wall_ns as f64;
            let cat = match label {
                "compute" => Category::Compute,
                "barrier" => Category::Barrier,
                "lock" => Category::Lock,
                "wire" => Category::Wire,
                _ => Category::Idle,
            };
            let _ = write!(
                h,
                "<div style=\"width:{pct:.2}%;background:{}\" title=\"{label}: {} ms ({pct:.1}%)\"></div>",
                color(cat),
                ms(ns)
            );
        }
        h.push_str("</div>\n<table><tr>");
        for (label, _) in s.path.parts() {
            let _ = write!(h, "<th>{label} (ms)</th>");
        }
        h.push_str("</tr><tr>");
        for (_, ns) in s.path.parts() {
            let _ = write!(h, "<td>{}</td>", ms(ns));
        }
        h.push_str("</tr></table>\n");

        // Scaling table.
        if !s.scaling.is_empty() {
            h.push_str(
                "<table><tr><th>p</th><th>time (s)</th><th>speedup</th>\
                 <th>efficiency</th><th>Karp–Flatt e</th></tr>\n",
            );
            for r in &s.scaling {
                let _ = writeln!(
                    h,
                    "<tr><td>{}</td><td>{:.4}</td><td>{:.3}</td><td>{:.3}</td><td>{:.4}</td></tr>",
                    r.p, r.time_s, r.speedup, r.efficiency, r.karp_flatt
                );
            }
            h.push_str("</table>\n");
        }

        // Histogram percentiles.
        if !s.histograms.is_empty() {
            h.push_str(
                "<table><tr><th>metric</th><th>samples</th><th>p50 (µs)</th>\
                 <th>p90 (µs)</th><th>p99 (µs)</th><th>max (µs)</th></tr>\n",
            );
            for hs in &s.histograms {
                h.push_str("<tr><td>");
                esc(&hs.cat, &mut h);
                h.push('/');
                esc(&hs.name, &mut h);
                let _ = write!(
                    h,
                    "</td><td>{}</td><td>{:.1}</td><td>{:.1}</td><td>{:.1}</td><td>{:.1}</td></tr>",
                    hs.count,
                    hs.p50_ns as f64 / 1e3,
                    hs.p90_ns as f64 / 1e3,
                    hs.p99_ns as f64 / 1e3,
                    hs.max_ns as f64 / 1e3
                );
            }
            h.push_str("</table>\n");
        }
    }

    for (label, lines) in traces {
        h.push_str("<h2>timeline — ");
        esc(label, &mut h);
        h.push_str("</h2>\n");
        timeline_svg(lines, &mut h);
    }

    h.push_str("</body></html>\n");
    h
}

/// One SVG timeline: a row per `(pid, tid)` lane, spans as category-
/// colored rects, `fault_injected` instants as red markers.
fn timeline_svg(lines: &[TraceLine], h: &mut String) {
    let mut lanes: Vec<(Option<u64>, u64)> = lines
        .iter()
        .filter(|l| {
            matches!(l.kind, LineKind::Span { .. })
                || (matches!(l.kind, LineKind::Instant) && l.name == "fault_injected")
        })
        .map(|l| (l.pid, l.tid))
        .collect();
    lanes.sort();
    lanes.dedup();
    if lanes.is_empty() {
        h.push_str("<p class=\"note\">no spans in this trace</p>\n");
        return;
    }
    let lane_row =
        |pid: Option<u64>, tid: u64| lanes.binary_search(&(pid, tid)).expect("lane listed above");

    let t0 = lines
        .iter()
        .filter(|l| matches!(l.kind, LineKind::Span { .. } | LineKind::Instant))
        .map(|l| l.ts_ns)
        .min()
        .unwrap_or(0);
    let t1 = lines
        .iter()
        .filter(|l| matches!(l.kind, LineKind::Span { .. } | LineKind::Instant))
        .map(|l| l.end_ns())
        .max()
        .unwrap_or(t0 + 1)
        .max(t0 + 1);
    let span_ns = (t1 - t0) as f64;

    const W: f64 = 1040.0;
    const ROW_H: f64 = 22.0;
    const LABEL_W: f64 = 80.0;
    let height = lanes.len() as f64 * ROW_H + 24.0;
    let x_of = |ts: u64| LABEL_W + (ts - t0) as f64 / span_ns * (W - LABEL_W - 8.0);

    // Collect span rects; if over budget, keep the longest (the ones a
    // reader can actually see).
    let mut spans: Vec<&TraceLine> = lines
        .iter()
        .filter(|l| matches!(l.kind, LineKind::Span { .. }))
        .collect();
    let total_spans = spans.len();
    if spans.len() > MAX_RECTS {
        spans.sort_by_key(|l| std::cmp::Reverse(l.end_ns() - l.ts_ns));
        spans.truncate(MAX_RECTS);
        spans.sort_by_key(|l| (l.pid, l.tid, l.ts_ns));
    }

    let _ = writeln!(
        h,
        "<svg viewBox=\"0 0 {W} {height}\" width=\"100%\" role=\"img\" \
         aria-label=\"per-rank timeline\">"
    );
    for (row, (pid, tid)) in lanes.iter().enumerate() {
        let y = row as f64 * ROW_H + 12.0;
        let label = match pid {
            Some(pid) => format!("pid{pid}/t{tid}"),
            None => format!("t{tid}"),
        };
        let _ = writeln!(
            h,
            "<text x=\"4\" y=\"{:.1}\" font-size=\"11\">{label}</text>",
            y + ROW_H * 0.65
        );
        let _ = writeln!(
            h,
            "<line x1=\"{LABEL_W}\" y1=\"{:.1}\" x2=\"{:.1}\" y2=\"{:.1}\" stroke=\"#e5e5e5\"/>",
            y + ROW_H / 2.0,
            W - 8.0,
            y + ROW_H / 2.0
        );
    }
    for l in &spans {
        let row = lane_row(l.pid, l.tid);
        let y = row as f64 * ROW_H + 14.0;
        let x = x_of(l.ts_ns);
        let w = (x_of(l.end_ns()) - x).max(0.5);
        let cat = Category::of(&l.cat, &l.name);
        h.push_str("<rect x=\"");
        let _ = write!(
            h,
            "{x:.2}\" y=\"{y:.1}\" width=\"{w:.2}\" height=\"{:.1}\" \
             fill=\"{}\" fill-opacity=\"0.85\"><title>",
            ROW_H - 6.0,
            color(cat)
        );
        esc(&l.cat, h);
        h.push(':');
        esc(&l.name, h);
        let _ = writeln!(h, " {} ms</title></rect>", ms(l.end_ns() - l.ts_ns));
    }
    // Fault overlay: one marker per injected-fault decision.
    for l in lines {
        if !matches!(l.kind, LineKind::Instant) || l.name != "fault_injected" {
            continue;
        }
        let row = lane_row(l.pid, l.tid);
        let y = row as f64 * ROW_H + 12.0 + ROW_H / 2.0;
        let x = x_of(l.ts_ns);
        let kind = l.arg_str("fault").unwrap_or("fault");
        let _ = write!(
            h,
            "<circle cx=\"{x:.2}\" cy=\"{y:.1}\" r=\"3.5\" fill=\"#d4343a\" \
             stroke=\"#fff\" stroke-width=\"1\"><title>injected {kind}"
        );
        if let Some(dst) = l.arg_u64("dst") {
            let _ = write!(h, " -> rank {dst}");
        }
        let _ = writeln!(h, " at {} ms</title></circle>", ms(l.ts_ns - t0));
    }
    h.push_str("</svg>\n");
    if total_spans > MAX_RECTS {
        let _ = writeln!(
            h,
            "<p class=\"note\">showing the {MAX_RECTS} longest of {total_spans} spans</p>"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{HistSummary, InsightReport, PathSummary, ScalingRow, StudyInsight};
    use pdc_analyze::traceio::parse_jsonl;

    fn report() -> InsightReport {
        InsightReport::new(vec![StudyInsight {
            study: "module A".into(),
            path: PathSummary {
                wall_ns: 100_000_000,
                compute_ns: 70_000_000,
                barrier_ns: 20_000_000,
                lock_ns: 0,
                wire_ns: 0,
                idle_ns: 10_000_000,
                steps: 5,
            },
            scaling: vec![ScalingRow::new(4, 1.25, 3.2, 0.8, 0.083)],
            histograms: vec![HistSummary {
                cat: "shmem".into(),
                name: "barrier_wait".into(),
                count: 9,
                p50_ns: 1_000,
                p90_ns: 2_000,
                p99_ns: 3_000,
                max_ns: 3_100,
            }],
        }])
    }

    #[test]
    fn dashboard_is_self_contained_html() {
        let html = render(&report(), &[]);
        assert!(html.starts_with("<!doctype html>"));
        assert!(html.contains("module A"));
        assert!(html.contains("Karp–Flatt"));
        assert!(html.contains("shmem/barrier_wait"));
        assert!(!html.contains("http://"), "no external assets");
        assert!(!html.contains("https://"), "no external assets");
    }

    #[test]
    fn timelines_render_lanes_and_fault_markers() {
        let jsonl = r#"
{"kind":"span","cat":"app","name":"work","ts_ns":0,"tid":1,"pid":5,"dur_ns":100}
{"kind":"span","cat":"mpc","name":"send","ts_ns":40,"tid":2,"pid":6,"dur_ns":20,"args":{"src":0,"dst":1,"tag":3}}
{"kind":"instant","cat":"net","name":"fault_injected","ts_ns":50,"tid":2,"pid":6,"args":{"fault":"drop","dst":1,"tag":3}}
"#;
        let html = render(&report(), &[("net".into(), parse_jsonl(jsonl))]);
        assert!(html.contains("timeline — net"));
        assert!(html.contains("pid5/t1"));
        assert!(html.contains("injected drop"));
        assert!(html.contains("<circle"));
    }

    #[test]
    fn rendering_is_deterministic() {
        assert_eq!(render(&report(), &[]), render(&report(), &[]));
    }
}
