//! Folding per-process histogram lines back into distributions.
//!
//! Each traced process exports its histograms as sparse
//! `{"kind":"hist",...}` JSONL lines (see `pdc_trace::export::hist_jsonl`).
//! Because `pdc_trace::hist::bucket_index` is a pure function of the
//! value — no per-process configuration — a merged multi-rank stream
//! folds back into one [`Histogram`] per `(category, name)` metric by
//! plain bucket addition, and the percentiles of the fold are the
//! percentiles of the union of every rank's samples (up to the fixed
//! ≤6.25% quantization).

use std::collections::BTreeMap;

use pdc_analyze::traceio::{LineKind, TraceLine};
use pdc_trace::Histogram;

/// Histograms per `(category, name)`, folded across processes.
#[derive(Debug, Clone, Default)]
pub struct HistogramSet {
    map: BTreeMap<(String, String), Histogram>,
}

impl HistogramSet {
    /// Fold every histogram line in a parsed trace stream.
    pub fn from_lines(lines: &[TraceLine]) -> Self {
        let mut set = Self::default();
        for line in lines {
            if let LineKind::Hist(h) = &line.kind {
                set.fold(&line.cat, &line.name, &Histogram::from_buckets(&h.buckets));
            }
        }
        set
    }

    /// Merge one histogram into the metric's fold.
    pub fn fold(&mut self, cat: &str, name: &str, h: &Histogram) {
        self.map
            .entry((cat.to_owned(), name.to_owned()))
            .or_default()
            .merge(h);
    }

    /// The folded histogram for a metric, if any rank recorded it.
    pub fn get(&self, cat: &str, name: &str) -> Option<&Histogram> {
        self.map.get(&(cat.to_owned(), name.to_owned()))
    }

    /// Iterate metrics in deterministic `(category, name)` order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str, &Histogram)> {
        self.map
            .iter()
            .map(|((c, n), h)| (c.as_str(), n.as_str(), h))
    }

    /// Number of distinct metrics.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no metric was folded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_analyze::traceio::parse_jsonl;
    use pdc_trace::hist::bucket_index;

    #[test]
    fn folds_same_metric_across_pids() {
        // Two ranks each recorded the same metric; the fold must count
        // both ranks' samples.
        let b1 = bucket_index(1_000);
        let b2 = bucket_index(50_000);
        let jsonl = format!(
            concat!(
                "{{\"kind\":\"hist\",\"cat\":\"net\",\"name\":\"rtt\",\"pid\":10,",
                "\"count\":3,\"sum\":3000,\"min\":1000,\"max\":1000,\"buckets\":[[{b1},3]]}}\n",
                "{{\"kind\":\"hist\",\"cat\":\"net\",\"name\":\"rtt\",\"pid\":20,",
                "\"count\":2,\"sum\":100000,\"min\":50000,\"max\":50000,\"buckets\":[[{b2},2]]}}\n",
            ),
            b1 = b1,
            b2 = b2,
        );
        let set = HistogramSet::from_lines(&parse_jsonl(&jsonl));
        assert_eq!(set.len(), 1);
        let h = set.get("net", "rtt").unwrap();
        assert_eq!(h.count(), 5);
        // p50 sits in the low cluster, p99 in the high one.
        assert!(h.percentile(50.0) < 10_000);
        assert!(h.percentile(99.0) > 40_000);
    }

    #[test]
    fn distinct_metrics_stay_separate() {
        let jsonl = concat!(
            "{\"kind\":\"hist\",\"cat\":\"mpc\",\"name\":\"frame_rtt\",\"pid\":1,",
            "\"count\":1,\"sum\":5,\"min\":5,\"max\":5,\"buckets\":[[5,1]]}\n",
            "{\"kind\":\"hist\",\"cat\":\"shmem\",\"name\":\"barrier_wait\",\"pid\":1,",
            "\"count\":1,\"sum\":7,\"min\":7,\"max\":7,\"buckets\":[[7,1]]}\n",
        );
        let set = HistogramSet::from_lines(&parse_jsonl(jsonl));
        assert_eq!(set.len(), 2);
        let keys: Vec<(&str, &str)> = set.iter().map(|(c, n, _)| (c, n)).collect();
        assert_eq!(keys, vec![("mpc", "frame_rtt"), ("shmem", "barrier_wait")]);
    }
}
