//! Collapsed-stack flamegraph export.
//!
//! The standard flamegraph interchange format is one line per unique
//! stack: `frame;frame;frame value`. Values here are **self-time
//! nanoseconds** — the time a stack's innermost frame was running with
//! no deeper span open — so the totals a flamegraph renderer computes
//! by summing children reproduce each span's inclusive time exactly.
//!
//! Lanes are prefixed as root frames (`pid12/tid3`) so a merged
//! multi-process trace renders as one flamegraph with a root per rank.
//! Output lines are sorted, making the export byte-deterministic for a
//! given trace.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use pdc_analyze::traceio::{LineKind, TraceLine};

/// Build collapsed-stack text from parsed trace lines.
pub fn collapsed_stacks(lines: &[TraceLine]) -> String {
    // Group span indexes per lane, sorted by (start, end) so parents
    // (equal start, longer duration sorts later — we need parents
    // FIRST, so sort by start asc, end desc).
    let mut lanes: BTreeMap<(Option<u64>, u64), Vec<usize>> = BTreeMap::new();
    for (i, line) in lines.iter().enumerate() {
        if matches!(line.kind, LineKind::Span { .. }) {
            lanes.entry((line.pid, line.tid)).or_default().push(i);
        }
    }

    let mut self_ns: BTreeMap<String, u64> = BTreeMap::new();
    for ((pid, tid), mut idxs) in lanes {
        idxs.sort_by_key(|&i| (lines[i].ts_ns, std::cmp::Reverse(lines[i].end_ns())));
        let root = match pid {
            Some(pid) => format!("pid{pid}/tid{tid}"),
            None => format!("tid{tid}"),
        };
        // Nesting sweep: stack of (span index, child time consumed).
        let mut stack: Vec<(usize, u64)> = Vec::new();
        let credit = |stack: &[(usize, u64)], out: &mut BTreeMap<String, u64>, ns: u64| {
            if ns == 0 {
                return;
            }
            let mut key = root.clone();
            for &(i, _) in stack {
                let _ = write!(key, ";{}:{}", lines[i].cat, lines[i].name);
            }
            *out.entry(key).or_insert(0) += ns;
        };
        for &i in &idxs {
            while let Some(&(top, child_ns)) = stack.last() {
                if lines[top].end_ns() <= lines[i].ts_ns {
                    // top closes: credit its self time.
                    let LineKind::Span { dur_ns } = lines[top].kind else {
                        unreachable!()
                    };
                    credit(&stack, &mut self_ns, dur_ns.saturating_sub(child_ns));
                    stack.pop();
                    if let Some(parent) = stack.last_mut() {
                        parent.1 += dur_ns;
                    }
                } else {
                    break;
                }
            }
            stack.push((i, 0));
        }
        while let Some((top, child_ns)) = stack.pop() {
            let LineKind::Span { dur_ns } = lines[top].kind else {
                unreachable!()
            };
            // Credit with the span still on a reconstructed stack.
            let mut full: Vec<(usize, u64)> = stack.clone();
            full.push((top, child_ns));
            credit(&full, &mut self_ns, dur_ns.saturating_sub(child_ns));
            if let Some(parent) = stack.last_mut() {
                parent.1 += dur_ns;
            }
        }
    }

    let mut out = String::new();
    for (stack, ns) in self_ns {
        let _ = writeln!(out, "{stack} {ns}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_analyze::traceio::parse_jsonl;

    #[test]
    fn self_time_subtracts_children() {
        let jsonl = r#"
{"kind":"span","cat":"app","name":"outer","ts_ns":0,"tid":1,"dur_ns":100}
{"kind":"span","cat":"app","name":"inner","ts_ns":20,"tid":1,"dur_ns":30}
"#;
        let text = collapsed_stacks(&parse_jsonl(jsonl));
        assert!(text.contains("tid1;app:outer 70\n"), "got: {text}");
        assert!(
            text.contains("tid1;app:outer;app:inner 30\n"),
            "got: {text}"
        );
    }

    #[test]
    fn lanes_get_pid_roots_and_output_is_sorted() {
        let jsonl = r#"
{"kind":"span","cat":"app","name":"b","ts_ns":0,"tid":1,"pid":9,"dur_ns":5}
{"kind":"span","cat":"app","name":"a","ts_ns":0,"tid":1,"pid":3,"dur_ns":5}
"#;
        let text = collapsed_stacks(&parse_jsonl(jsonl));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines, vec!["pid3/tid1;app:a 5", "pid9/tid1;app:b 5"],);
    }

    #[test]
    fn repeated_stacks_accumulate() {
        let jsonl = r#"
{"kind":"span","cat":"app","name":"w","ts_ns":0,"tid":1,"dur_ns":10}
{"kind":"span","cat":"app","name":"w","ts_ns":20,"tid":1,"dur_ns":15}
"#;
        let text = collapsed_stacks(&parse_jsonl(jsonl));
        assert_eq!(text, "tid1;app:w 25\n");
    }
}
