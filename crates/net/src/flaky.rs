//! Frame-level fault injection: the wire-mode counterpart of the
//! thread-mode chokepoint's message faults.
//!
//! [`FlakyTransport`] wraps any [`Transport`] and consults a
//! [`FaultInjector`] about every *user* data frame (non-negative tag,
//! not a retransmission) while armed. Verdicts mirror thread mode:
//! drops vanish before the wire (reported as
//! [`FrameOutcome::InjectedDrop`], so `send_reliable`'s
//! drops/recoveries ledger works verbatim), duplicates go out twice,
//! delays sleep the sender, reorders set the frame's overtake flag.
//! Control traffic — collectives, acks, retransmissions, heartbeats —
//! is exempt, the same "reliable control plane" assumption the
//! thread-mode injector makes.
//!
//! Because injector verdicts are counter-based per (src, dst) channel,
//! a workload whose per-channel user-message sequence is deterministic
//! injects a bit-identical fault history on every run — across OS
//! processes just as within one. (Partition windows, which index a
//! *global* op counter, are scheduling-dependent across processes and
//! are not meaningful over the wire; wire-mode plans should not use
//! them.)
//!
//! The `armed` switch lets a study run fault-free phases (e.g. a traced
//! patternlet sweep whose merged traces must analyze clean) and chaos
//! phases over one connection without re-forming the mesh.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use pdc_chaos::{FaultInjector, SendFault};
use pdc_mpc::{FrameOutcome, Transport, WireFrame, WireHandle};

/// A fault-injecting [`Transport`] wrapper. See the module docs.
pub struct FlakyTransport {
    inner: Arc<dyn Transport>,
    injector: Arc<FaultInjector>,
    armed: AtomicBool,
}

impl std::fmt::Debug for FlakyTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlakyTransport")
            .field("rank", &self.inner.rank())
            .field("armed", &self.armed.load(Ordering::Relaxed))
            .finish()
    }
}

impl FlakyTransport {
    /// Wrap `inner`, consulting `injector` for every armed user frame.
    /// Starts **armed**; see [`FlakyTransport::set_armed`].
    pub fn new(inner: Arc<dyn Transport>, injector: Arc<FaultInjector>) -> Arc<Self> {
        Arc::new(Self {
            inner,
            injector,
            armed: AtomicBool::new(true),
        })
    }

    /// Arm or disarm injection. Disarmed, every frame passes through
    /// untouched and the injector is never consulted (its per-channel
    /// counters do not advance), so the armed phases of a run see the
    /// same verdict sequence regardless of what ran disarmed.
    pub fn set_armed(&self, armed: bool) {
        self.armed.store(armed, Ordering::SeqCst);
    }

    /// Is injection currently armed?
    pub fn armed(&self) -> bool {
        self.armed.load(Ordering::SeqCst)
    }

    /// The injector this wrapper consults.
    pub fn injector(&self) -> Arc<FaultInjector> {
        Arc::clone(&self.injector)
    }
}

impl Transport for FlakyTransport {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn hostnames(&self) -> Vec<String> {
        self.inner.hostnames()
    }

    fn start(&self, wire: WireHandle) {
        self.inner.start(wire);
    }

    fn send_frame(&self, dst: usize, frame: WireFrame) -> pdc_mpc::error::Result<FrameOutcome> {
        let user = frame.tag >= 0 && !frame.exempt;
        if !user || !self.armed.load(Ordering::Relaxed) {
            return self.inner.send_frame(dst, frame);
        }
        // Each verdict is recorded twice: the counter keeps the totals
        // that reconcile against the injector's ledger, and a
        // timestamped `fault_injected` instant (kind/dst/tag) places
        // the decision on the timeline so dashboards can overlay faults
        // on the traffic they perturbed.
        let tag = frame.tag;
        let fault_instant = move |kind: &'static str| {
            pdc_trace::instant(
                "net",
                "fault_injected",
                vec![
                    ("fault", kind.into()),
                    ("dst", dst.into()),
                    ("tag", i64::from(tag).into()),
                ],
            );
        };
        match self.injector.on_send(self.inner.rank(), dst, true) {
            SendFault::Deliver => self.inner.send_frame(dst, frame),
            SendFault::Drop => {
                // The frame never reaches the wire. The injector
                // already charged its ledger; the net layer counts the
                // lost frame too so wire traces reconcile.
                pdc_trace::counter("net", "frames_dropped", 1);
                fault_instant("drop");
                Ok(FrameOutcome::InjectedDrop)
            }
            SendFault::Duplicate => {
                let mut twin = frame.clone();
                // The twin must not carry the ack id: one matched copy
                // acks the sender, the other is the duplicate the
                // receiver has to cope with.
                twin.ack_id = 0;
                self.inner.send_frame(dst, frame)?;
                pdc_trace::counter("net", "frames_duplicated", 1);
                fault_instant("duplicate");
                self.inner.send_frame(dst, twin)
            }
            SendFault::Delay(how_long) => {
                pdc_trace::counter("net", "frames_delayed", 1);
                fault_instant("delay");
                std::thread::sleep(how_long);
                self.inner.send_frame(dst, frame)
            }
            SendFault::Reorder => {
                let mut frame = frame;
                frame.overtake = true;
                pdc_trace::counter("net", "frames_reordered", 1);
                fault_instant("reorder");
                self.inner.send_frame(dst, frame)
            }
        }
    }

    fn announce_crash(&self) {
        self.inner.announce_crash();
    }

    fn shutdown(&self) {
        self.inner.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use parking_lot::Mutex;
    use pdc_chaos::FaultPlan;

    /// Records what reaches "the wire".
    #[derive(Default)]
    struct Loopback {
        sent: Mutex<Vec<(usize, WireFrame)>>,
    }

    impl Transport for Loopback {
        fn rank(&self) -> usize {
            0
        }
        fn size(&self) -> usize {
            2
        }
        fn hostnames(&self) -> Vec<String> {
            vec!["localhost".into(); 2]
        }
        fn start(&self, _wire: WireHandle) {}
        fn send_frame(&self, dst: usize, frame: WireFrame) -> pdc_mpc::error::Result<FrameOutcome> {
            self.sent.lock().push((dst, frame));
            Ok(FrameOutcome::Sent)
        }
    }

    fn user_frame(tag: i32) -> WireFrame {
        WireFrame {
            comm_id: 0,
            src_group: 0,
            tag,
            payload: Bytes::copy_from_slice(b"x"),
            ack_id: 9,
            overtake: false,
            exempt: false,
        }
    }

    #[test]
    fn drop_rate_one_drops_every_armed_user_frame() {
        let wire = Arc::new(Loopback::default());
        let injector = Arc::new(FaultInjector::new(FaultPlan::new(1).with_drop_rate(1.0)));
        let flaky = FlakyTransport::new(wire.clone(), injector.clone());
        for _ in 0..4 {
            let out = flaky.send_frame(1, user_frame(3)).unwrap();
            assert_eq!(out, FrameOutcome::InjectedDrop);
        }
        assert!(wire.sent.lock().is_empty());
        assert_eq!(injector.stats().drops, 4);
    }

    #[test]
    fn control_plane_and_disarmed_frames_pass_untouched() {
        let wire = Arc::new(Loopback::default());
        let injector = Arc::new(FaultInjector::new(FaultPlan::new(1).with_drop_rate(1.0)));
        let flaky = FlakyTransport::new(wire.clone(), injector.clone());
        // Negative tag: collective control traffic.
        flaky.send_frame(1, user_frame(-3)).unwrap();
        // Retransmission: exempt.
        let mut retx = user_frame(3);
        retx.exempt = true;
        flaky.send_frame(1, retx).unwrap();
        // Disarmed: user traffic passes and the injector stays silent.
        flaky.set_armed(false);
        flaky.send_frame(1, user_frame(3)).unwrap();
        assert_eq!(wire.sent.lock().len(), 3);
        assert_eq!(injector.stats().drops, 0);
    }

    #[test]
    fn duplicates_strip_the_twin_ack_id() {
        let wire = Arc::new(Loopback::default());
        let injector = Arc::new(FaultInjector::new(
            FaultPlan::new(1).with_duplicate_rate(1.0),
        ));
        let flaky = FlakyTransport::new(wire.clone(), injector);
        flaky.send_frame(1, user_frame(3)).unwrap();
        let sent = wire.sent.lock();
        assert_eq!(sent.len(), 2);
        assert_eq!(sent[0].1.ack_id, 9, "original keeps its ack id");
        assert_eq!(sent[1].1.ack_id, 0, "twin must not double-ack");
    }

    #[test]
    fn reorder_sets_the_overtake_flag() {
        let wire = Arc::new(Loopback::default());
        let injector = Arc::new(FaultInjector::new(FaultPlan::new(1).with_reorder_rate(1.0)));
        let flaky = FlakyTransport::new(wire.clone(), injector);
        flaky.send_frame(1, user_frame(3)).unwrap();
        assert!(wire.sent.lock()[0].1.overtake);
    }
}
