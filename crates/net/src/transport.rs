//! The TCP backend: rank-0 rendezvous, full-mesh link formation,
//! per-peer send/receive pumps, heartbeat failure detection, and
//! reconnect with deterministic backoff.
//!
//! ## Topology
//!
//! Every rank binds an ephemeral listener on localhost. Rank 0 writes
//! its address to the rendezvous file (atomically: tmp + rename);
//! joiners poll the file, dial rank 0, and introduce themselves with a
//! [`Hello`] carrying their own listen address. Once all `np - 1`
//! joiners have checked in, rank 0 answers each with a [`Welcome`]
//! carrying the complete address book and keeps those connections as
//! its mesh links. Joiners then dial every *higher* rank directly
//! (lower rank dials higher, so each pair forms exactly one link) and
//! block until every peer slot has a live link — [`TcpTransport::connect`]
//! returns only on a fully formed mesh.
//!
//! ## Pumps and heartbeats
//!
//! Each link gets a writer thread (drains a queue; sends a
//! [`FrameKind::Heartbeat`] whenever the link has been idle for one
//! heartbeat interval) and a reader thread (decodes frames; every
//! arrival — data or heartbeat — refreshes the peer's `last_seen`
//! clock). A failure-detector thread scans those clocks and declares
//! any peer silent for longer than the heartbeat timeout dead, feeding
//! the same `DeadSet` that cooperative thread-mode crashes feed.
//!
//! ## Link loss
//!
//! A broken link (write failure, read EOF, corrupt frame) is not
//! immediately a death: the dialing side of the pair re-dials with the
//! chaos [`RetryPolicy`]'s capped exponential backoff, re-introduces
//! itself, and resumes — counting one `net/reconnects`. Only when the
//! redial budget is exhausted (or, on the accepting side, when
//! heartbeats stay silent past the timeout) is the peer marked dead.
//! In-flight frames on a broken link are lost; that is the wire being
//! honest, and exactly what `send_reliable` exists to paper over.

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::{Condvar, Mutex};

use pdc_chaos::RetryPolicy;
use pdc_mpc::{FrameOutcome, Transport, WireFrame, WireHandle};

use crate::frame::{Frame, FrameKind, Hello, Welcome};

/// Everything [`TcpTransport::connect`] needs to join a world.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// World rank this process hosts.
    pub rank: usize,
    /// World size.
    pub size: usize,
    /// Session id; all ranks of one launch must agree, and the
    /// handshake rejects strangers from other sessions.
    pub session: u64,
    /// Path of the rendezvous file rank 0 publishes its address in.
    pub rendezvous: PathBuf,
    /// Idle gap after which a link sends a keepalive heartbeat.
    pub heartbeat_interval: Duration,
    /// Silence after which the failure detector declares a peer dead.
    /// Must comfortably exceed the interval (the default is 20x).
    pub heartbeat_timeout: Duration,
    /// Budget for the whole join: rendezvous, dials, mesh formation.
    pub connect_timeout: Duration,
    /// Backoff schedule for re-dialing a broken link; its exhaustion is
    /// the dialer-side death verdict.
    pub retry: RetryPolicy,
}

impl NetConfig {
    /// A config with default timings (100ms heartbeats, 2s death
    /// verdict, 20s join budget).
    pub fn new(rank: usize, size: usize, session: u64, rendezvous: PathBuf) -> Self {
        Self {
            rank,
            size,
            session,
            rendezvous,
            heartbeat_interval: Duration::from_millis(100),
            heartbeat_timeout: Duration::from_secs(2),
            connect_timeout: Duration::from_secs(20),
            retry: RetryPolicy::default(),
        }
    }

    /// Read the launcher-provided environment (`PDC_NET_RANK`,
    /// `PDC_NET_SIZE`, `PDC_NET_SESSION`, `PDC_NET_RENDEZVOUS`) — how a
    /// worker process spawned by `pdc-run` discovers its identity.
    pub fn from_env() -> io::Result<Self> {
        fn var(key: &str) -> io::Result<String> {
            std::env::var(key).map_err(|_| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("{key} not set (worker processes are spawned by pdc-run)"),
                )
            })
        }
        fn parse<T: std::str::FromStr>(key: &str, text: &str) -> io::Result<T> {
            text.parse().map_err(|_| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("{key} is not a valid number: {text:?}"),
                )
            })
        }
        let rank: usize = parse("PDC_NET_RANK", &var("PDC_NET_RANK")?)?;
        let size: usize = parse("PDC_NET_SIZE", &var("PDC_NET_SIZE")?)?;
        let session: u64 = parse("PDC_NET_SESSION", &var("PDC_NET_SESSION")?)?;
        let rendezvous = PathBuf::from(var("PDC_NET_RENDEZVOUS")?);
        if size == 0 || rank >= size {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("rank {rank} out of range for world size {size}"),
            ));
        }
        Ok(Self::new(rank, size, session, rendezvous))
    }
}

/// Lifecycle of one peer link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PeerStatus {
    /// No link yet (mesh still forming).
    Vacant,
    /// Link up, pumps running.
    Connected,
    /// Link lost; reconnect may be in flight.
    Down,
    /// Peer said goodbye ([`FrameKind::Bye`]); its silence is not a death.
    Closed,
}

struct Peer {
    /// Queue into the writer pump; `None` while no link is up. Sends to
    /// a linkless peer succeed vacuously — the wire is lossy by
    /// contract, and reliability is layered above.
    tx: Mutex<Option<mpsc::Sender<Frame>>>,
    status: Mutex<PeerStatus>,
    /// Bumped on every (re)install; pump threads carry their link's
    /// generation so a stale pump's death cannot tear down its successor.
    generation: AtomicU64,
    /// Nanoseconds (since transport epoch) of the last frame — any
    /// frame — received from this peer. The failure detector's clock.
    last_seen: AtomicU64,
}

struct Shared {
    cfg: NetConfig,
    epoch: Instant,
    listener: TcpListener,
    listen_addr: SocketAddr,
    /// `addrs[r]` = rank r's listen address, once known.
    addrs: Mutex<Vec<Option<SocketAddr>>>,
    peers: Vec<Peer>,
    /// Set by [`Transport::start`]; pumps block on it before delivering.
    handle: Mutex<Option<WireHandle>>,
    handle_cv: Condvar,
    shutting_down: AtomicBool,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

/// The real-wire transport: one instance per OS process, hosting one
/// world rank. Obtained from [`TcpTransport::connect`], handed to
/// `World::attach`, and shut down by the caller when the rank is done.
pub struct TcpTransport {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("rank", &self.shared.cfg.rank)
            .field("size", &self.shared.cfg.size)
            .field("listen", &self.shared.listen_addr)
            .finish()
    }
}

impl TcpTransport {
    /// Join the session: bind, rendezvous, form the full mesh, start
    /// the pumps. Returns only when a link to every peer is up (or the
    /// join budget expires).
    pub fn connect(cfg: NetConfig) -> io::Result<Arc<TcpTransport>> {
        assert!(cfg.size >= 1, "world size must be at least 1");
        assert!(cfg.rank < cfg.size, "rank out of range");
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let listen_addr = listener.local_addr()?;
        let mut addrs = vec![None; cfg.size];
        addrs[cfg.rank] = Some(listen_addr);
        let shared = Arc::new(Shared {
            peers: (0..cfg.size)
                .map(|_| Peer {
                    tx: Mutex::new(None),
                    status: Mutex::new(PeerStatus::Vacant),
                    generation: AtomicU64::new(0),
                    last_seen: AtomicU64::new(0),
                })
                .collect(),
            cfg,
            epoch: Instant::now(),
            listener,
            listen_addr,
            addrs: Mutex::new(addrs),
            handle: Mutex::new(None),
            handle_cv: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            threads: Mutex::new(Vec::new()),
        });
        let deadline = Instant::now() + shared.cfg.connect_timeout;
        if shared.cfg.rank == 0 {
            shared.publish_rendezvous()?;
            shared.rendezvous_rank0(deadline)?;
        } else {
            shared.join_via_rank0(deadline)?;
        }
        // From here on, inbound connections (mesh dials from lower
        // ranks, reconnects) are admitted by the accept loop.
        {
            let sh = Arc::clone(&shared);
            let h = thread::spawn(move || sh.accept_loop());
            shared.threads.lock().push(h);
        }
        // Dial every higher rank (rank 0's links all formed at
        // rendezvous; each other pair is dialed by its lower member).
        if shared.cfg.rank > 0 {
            for peer in shared.cfg.rank + 1..shared.cfg.size {
                let addr = shared.addrs.lock()[peer].expect("welcome filled the address book");
                let stream = shared.dial(addr, deadline)?;
                shared.send_hello(&stream)?;
                shared.install_stream(peer, stream)?;
            }
        }
        shared.wait_mesh(deadline)?;
        pdc_trace::instant(
            "net",
            "mesh_formed",
            vec![
                ("rank", shared.cfg.rank.into()),
                ("np", shared.cfg.size.into()),
            ],
        );
        Ok(Arc::new(TcpTransport { shared }))
    }

    /// This process's listen address.
    pub fn listen_addr(&self) -> SocketAddr {
        self.shared.listen_addr
    }

    /// The config this transport was built from.
    pub fn config(&self) -> &NetConfig {
        &self.shared.cfg
    }

    /// Abruptly kill every socket and pump *without* saying goodbye —
    /// what `kill -9` does to a real process, minus the process exit.
    /// Peers get no Bye and no crash notice; they must notice the
    /// silence themselves (heartbeat timeout / redial exhaustion).
    /// For failure-detection tests and chaos drills.
    pub fn sever(&self) {
        let sh = &self.shared;
        if sh.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        for peer in &sh.peers {
            *peer.tx.lock() = None;
        }
        // Unblock the accept loop: flip the listener to non-blocking so
        // its next wakeup observes the flag.
        let _ = sh.listener.set_nonblocking(true);
        let _ = TcpStream::connect_timeout(&sh.listen_addr, Duration::from_millis(200));
        sh.handle_cv.notify_all();
        sh.join_pumps();
    }
}

impl Transport for TcpTransport {
    fn rank(&self) -> usize {
        self.shared.cfg.rank
    }

    fn size(&self) -> usize {
        self.shared.cfg.size
    }

    fn hostnames(&self) -> Vec<String> {
        // Localhost cluster — same name thread-mode worlds default to,
        // so patternlet output is backend-independent.
        vec!["localhost".to_owned(); self.shared.cfg.size]
    }

    fn start(&self, wire: WireHandle) {
        {
            let mut slot = self.shared.handle.lock();
            assert!(slot.is_none(), "transport started twice");
            *slot = Some(wire.clone());
        }
        self.shared.handle_cv.notify_all();
        let sh = Arc::clone(&self.shared);
        let h = thread::spawn(move || sh.detector_loop(wire));
        self.shared.threads.lock().push(h);
    }

    fn send_frame(&self, dst: usize, frame: WireFrame) -> pdc_mpc::error::Result<FrameOutcome> {
        let f = Frame {
            kind: FrameKind::Data,
            src: frame.src_group as u32,
            tag: frame.tag,
            comm_id: frame.comm_id,
            ack_id: frame.ack_id,
            overtake: frame.overtake,
            retransmit: frame.exempt,
            payload: frame.payload.to_vec(),
        };
        self.shared.enqueue(dst, f);
        Ok(FrameOutcome::Sent)
    }

    fn announce_crash(&self) {
        let me = self.shared.cfg.rank;
        for peer in 0..self.shared.cfg.size {
            if peer != me {
                self.shared
                    .enqueue(peer, Frame::control(FrameKind::Dead, me as u32));
            }
        }
    }

    fn shutdown(&self) {
        let sh = &self.shared;
        if sh.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Goodbyes ride behind any still-queued frames, so shutdown
        // drains before it silences. Writers exit after writing Bye;
        // readers exit on their next timeout poll (or the peer's Bye).
        let me = sh.cfg.rank as u32;
        for peer in 0..sh.cfg.size {
            if peer != sh.cfg.rank {
                sh.enqueue(peer, Frame::control(FrameKind::Bye, me));
            }
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&sh.listen_addr, Duration::from_millis(200));
        sh.handle_cv.notify_all();
        sh.join_pumps();
        pdc_trace::instant(
            "net",
            "transport_shutdown",
            vec![("rank", sh.cfg.rank.into())],
        );
    }
}

/// A `Read` that turns poll timeouts into patience: retries
/// `WouldBlock`/`TimedOut` (checking the shutdown flag between polls)
/// so `Frame::read_from` can never desynchronize on a frame that
/// arrives split across timeout boundaries.
struct Patient<'a> {
    stream: &'a TcpStream,
    shared: &'a Shared,
}

impl Read for Patient<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            match (&mut &*self.stream).read(buf) {
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if self.shared.shutting_down.load(Ordering::Relaxed) {
                        return Err(io::Error::other("shutting down"));
                    }
                }
                r => return r,
            }
        }
    }
}

impl Shared {
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::Relaxed)
    }

    /// Queue a frame toward `dst`; vacuous when no link is up.
    fn enqueue(&self, dst: usize, frame: Frame) {
        let guard = self.peers[dst].tx.lock();
        if let Some(tx) = guard.as_ref() {
            let _ = tx.send(frame);
        }
    }

    /// Block until `start` has handed over the wire handle (pumps can
    /// outrun `World::attach`); `None` means shutdown won the race.
    fn wait_handle(&self) -> Option<WireHandle> {
        let mut guard = self.handle.lock();
        loop {
            if let Some(h) = guard.as_ref() {
                return Some(h.clone());
            }
            if self.is_shutting_down() {
                return None;
            }
            let _ = self
                .handle_cv
                .wait_for(&mut guard, Duration::from_millis(50));
        }
    }

    /// Non-blocking peek at the dead set (usable before `start`).
    fn known_dead(&self, peer: usize) -> bool {
        self.handle
            .lock()
            .as_ref()
            .map(|h| h.is_dead(peer))
            .unwrap_or(false)
    }

    // --- join ---------------------------------------------------------

    /// Rank 0 publishes its listen address (atomically, so a joiner
    /// never reads a half-written file).
    fn publish_rendezvous(&self) -> io::Result<()> {
        if let Some(dir) = self.cfg.rendezvous.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let tmp = self.cfg.rendezvous.with_extension("tmp");
        std::fs::write(&tmp, self.listen_addr.to_string())?;
        std::fs::rename(&tmp, &self.cfg.rendezvous)
    }

    /// Rank 0's side of the join: collect one Hello per joiner, then
    /// answer each with the complete address book and keep the
    /// connection as the mesh link to that rank.
    fn rendezvous_rank0(self: &Arc<Self>, deadline: Instant) -> io::Result<()> {
        let np = self.cfg.size;
        self.listener.set_nonblocking(true)?;
        let mut pending: Vec<(usize, TcpStream)> = Vec::new();
        let mut seen = vec![false; np];
        seen[0] = true;
        while pending.len() < np - 1 {
            if Instant::now() > deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("rendezvous: {}/{} ranks checked in", pending.len() + 1, np),
                ));
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    // A malformed or duplicate Hello just drops the
                    // connection; the real joiner can still show up.
                    if let Ok(rank) = self.read_hello(&stream) {
                        if !seen[rank] {
                            seen[rank] = true;
                            pending.push((rank, stream));
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }
        self.listener.set_nonblocking(false)?;
        let addrs: Vec<String> = {
            let book = self.addrs.lock();
            book.iter()
                .map(|a| a.expect("all ranks checked in").to_string())
                .collect()
        };
        let welcome = Welcome {
            session: self.cfg.session,
            addrs,
        };
        let payload =
            serde_json::to_vec(&welcome).map_err(|_| bad("unencodable welcome payload"))?;
        for (rank, stream) in pending {
            let mut f = Frame::control(FrameKind::Welcome, 0);
            f.payload = payload.clone();
            f.write_to(&mut &stream)?;
            self.install_stream(rank, stream)?;
        }
        Ok(())
    }

    /// A joiner's side: poll the rendezvous file, dial rank 0,
    /// introduce ourselves, learn the address book from the Welcome.
    fn join_via_rank0(self: &Arc<Self>, deadline: Instant) -> io::Result<()> {
        let addr0 = loop {
            if let Ok(text) = std::fs::read_to_string(&self.cfg.rendezvous) {
                if let Ok(addr) = text.trim().parse::<SocketAddr>() {
                    break addr;
                }
            }
            if Instant::now() > deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("no rendezvous file at {}", self.cfg.rendezvous.display()),
                ));
            }
            thread::sleep(Duration::from_millis(10));
        };
        let stream = self.dial(addr0, deadline)?;
        self.send_hello(&stream)?;
        stream.set_read_timeout(Some(self.cfg.connect_timeout))?;
        let frame = Frame::read_from(&mut &stream)?;
        if frame.kind != FrameKind::Welcome {
            return Err(bad("expected a welcome from rank 0"));
        }
        let welcome: Welcome =
            serde_json::from_slice(&frame.payload).map_err(|_| bad("bad welcome payload"))?;
        if welcome.session != self.cfg.session {
            return Err(bad("welcome from a different session"));
        }
        if welcome.addrs.len() != self.cfg.size {
            return Err(bad("welcome address book has wrong size"));
        }
        {
            let mut book = self.addrs.lock();
            for (rank, text) in welcome.addrs.iter().enumerate() {
                book[rank] = Some(text.parse().map_err(|_| bad("bad address in welcome"))?);
            }
        }
        self.install_stream(0, stream)
    }

    /// Dial with short per-attempt timeouts until the join deadline:
    /// the peer's listener may not be accepting yet.
    fn dial(&self, addr: SocketAddr, deadline: Instant) -> io::Result<TcpStream> {
        loop {
            match TcpStream::connect_timeout(&addr, Duration::from_millis(250)) {
                Ok(stream) => return Ok(stream),
                Err(e) => {
                    if Instant::now() > deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!("dialing {addr}: {e}"),
                        ));
                    }
                    thread::sleep(Duration::from_millis(25));
                }
            }
        }
    }

    fn send_hello(&self, stream: &TcpStream) -> io::Result<()> {
        let hello = Hello {
            session: self.cfg.session,
            rank: self.cfg.rank as u32,
            np: self.cfg.size as u32,
            listen: self.listen_addr.to_string(),
        };
        let mut f = Frame::control(FrameKind::Hello, self.cfg.rank as u32);
        f.payload = serde_json::to_vec(&hello).map_err(|_| bad("unencodable hello payload"))?;
        f.write_to(&mut &*stream)
    }

    /// Read and validate a Hello off a fresh connection; records the
    /// peer's listen address and returns its rank.
    fn read_hello(&self, stream: &TcpStream) -> io::Result<usize> {
        stream.set_read_timeout(Some(Duration::from_secs(2)))?;
        let frame = Frame::read_from(&mut &*stream)?;
        if frame.kind != FrameKind::Hello {
            return Err(bad("expected a hello"));
        }
        let hello: Hello =
            serde_json::from_slice(&frame.payload).map_err(|_| bad("bad hello payload"))?;
        if hello.session != self.cfg.session {
            return Err(bad("hello from a different session"));
        }
        if hello.np as usize != self.cfg.size {
            return Err(bad("hello disagrees on world size"));
        }
        let peer = hello.rank as usize;
        if peer >= self.cfg.size || peer == self.cfg.rank {
            return Err(bad("hello from an impossible rank"));
        }
        if let Ok(addr) = hello.listen.parse() {
            self.addrs.lock()[peer] = Some(addr);
        }
        Ok(peer)
    }

    /// Block until a link to every peer is up.
    fn wait_mesh(&self, deadline: Instant) -> io::Result<()> {
        loop {
            let missing = (0..self.cfg.size)
                .filter(|&p| p != self.cfg.rank && self.peers[p].tx.lock().is_none())
                .count();
            if missing == 0 {
                return Ok(());
            }
            if Instant::now() > deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("mesh formation: {missing} peers never linked"),
                ));
            }
            thread::sleep(Duration::from_millis(5));
        }
    }

    // --- links --------------------------------------------------------

    /// Which member of a pair (re)dials when the link is down: pairs
    /// with rank 0 are dialed by the nonzero member (that is what the
    /// rendezvous address book makes possible); other pairs by the
    /// lower rank. Deterministic, so a pair never double-dials.
    fn dialer_for(&self, peer: usize) -> bool {
        let me = self.cfg.rank;
        if peer == 0 {
            return true; // me != 0: pairs exclude self
        }
        if me == 0 {
            return false;
        }
        me < peer
    }

    /// Wire a fresh stream up as the link to `peer`: bump the link
    /// generation, mark connected, and spawn the two pump threads.
    fn install_stream(self: &Arc<Self>, peer: usize, stream: TcpStream) -> io::Result<()> {
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.cfg.heartbeat_interval))?;
        // A peer that stops draining (killed process, full buffers)
        // must fail the writer, not wedge it.
        stream.set_write_timeout(Some(Duration::from_secs(1)))?;
        let reader = stream.try_clone()?;
        let (tx, rx) = mpsc::channel::<Frame>();
        let generation = {
            let mut status = self.peers[peer].status.lock();
            let generation = self.peers[peer].generation.fetch_add(1, Ordering::SeqCst) + 1;
            *status = PeerStatus::Connected;
            generation
        };
        self.peers[peer]
            .last_seen
            .store(self.now_ns(), Ordering::Relaxed);
        *self.peers[peer].tx.lock() = Some(tx);
        let sh = Arc::clone(self);
        let h = thread::spawn(move || sh.writer_pump(peer, generation, stream, rx));
        self.threads.lock().push(h);
        let sh = Arc::clone(self);
        let h = thread::spawn(move || sh.reader_pump(peer, generation, reader));
        self.threads.lock().push(h);
        Ok(())
    }

    fn writer_pump(
        self: Arc<Self>,
        peer: usize,
        generation: u64,
        stream: TcpStream,
        rx: mpsc::Receiver<Frame>,
    ) {
        let me = self.cfg.rank as u32;
        loop {
            match rx.recv_timeout(self.cfg.heartbeat_interval) {
                Ok(frame) => {
                    let bye = frame.kind == FrameKind::Bye;
                    let wire_len = (frame.payload.len() + 40) as i64;
                    if frame.write_to(&mut &stream).is_err() {
                        self.link_down(peer, generation);
                        break;
                    }
                    pdc_trace::counter("net", "frames_sent", 1);
                    pdc_trace::counter("net", "bytes_sent", wire_len);
                    if bye {
                        break;
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if self.is_shutting_down() {
                        break;
                    }
                    if Frame::control(FrameKind::Heartbeat, me)
                        .write_to(&mut &stream)
                        .is_err()
                    {
                        self.link_down(peer, generation);
                        break;
                    }
                    pdc_trace::counter("net", "heartbeats_sent", 1);
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
        pdc_trace::flush_thread();
    }

    fn reader_pump(self: Arc<Self>, peer: usize, generation: u64, stream: TcpStream) {
        loop {
            let frame = match Frame::read_from(&mut Patient {
                stream: &stream,
                shared: &self,
            }) {
                Ok(frame) => frame,
                Err(_) => {
                    // EOF, reset, or a corrupt frame: the stream is no
                    // longer trustworthy, so the link comes down whole.
                    if !self.is_shutting_down() {
                        self.link_down(peer, generation);
                    }
                    break;
                }
            };
            let now = self.now_ns();
            let prev_seen = self.peers[peer].last_seen.swap(now, Ordering::Relaxed);
            pdc_trace::counter("net", "frames_received", 1);
            match frame.kind {
                FrameKind::Data => {
                    let Some(handle) = self.wait_handle() else {
                        break;
                    };
                    let ack = if frame.ack_id != 0 {
                        let sh = Arc::clone(&self);
                        let id = frame.ack_id;
                        let me = self.cfg.rank as u32;
                        Some(Box::new(move || {
                            let mut f = Frame::control(FrameKind::Ack, me);
                            f.ack_id = id;
                            sh.enqueue(peer, f);
                            pdc_trace::counter("net", "acks_sent", 1);
                        }) as Box<dyn FnOnce() + Send>)
                    } else {
                        None
                    };
                    handle.deliver(
                        WireFrame {
                            comm_id: frame.comm_id,
                            src_group: frame.src as usize,
                            tag: frame.tag,
                            payload: Bytes::from(frame.payload),
                            ack_id: frame.ack_id,
                            overtake: frame.overtake,
                            exempt: frame.retransmit,
                        },
                        ack,
                    );
                }
                FrameKind::Ack => {
                    let Some(handle) = self.wait_handle() else {
                        break;
                    };
                    handle.complete_ack(frame.ack_id);
                }
                FrameKind::Heartbeat => {
                    // The last_seen refresh was the point; additionally
                    // record how long this link had been silent. The
                    // distribution's tail is the failure detector's
                    // noise floor — a p99 near the timeout means the
                    // detector is one hiccup away from a false verdict.
                    if prev_seen != 0 && now > prev_seen {
                        pdc_trace::hist("net", "heartbeat_gap", now - prev_seen);
                    }
                }
                FrameKind::Dead => {
                    let Some(handle) = self.wait_handle() else {
                        break;
                    };
                    if handle.mark_dead(frame.src as usize) {
                        pdc_trace::counter("net", "crash_notices", 1);
                    }
                }
                FrameKind::Bye => {
                    *self.peers[peer].status.lock() = PeerStatus::Closed;
                    *self.peers[peer].tx.lock() = None;
                    break;
                }
                FrameKind::Hello | FrameKind::Welcome => {
                    // Handshake frames mid-stream: protocol violation.
                    self.link_down(peer, generation);
                    break;
                }
            }
        }
        pdc_trace::flush_thread();
    }

    /// One pump of link generation `generation` saw the link fail.
    /// First reporter wins; the dialing side starts a reconnect loop,
    /// the accepting side waits to be re-dialed (or for the failure
    /// detector's verdict).
    fn link_down(self: &Arc<Self>, peer: usize, generation: u64) {
        if self.is_shutting_down() {
            return;
        }
        {
            let mut status = self.peers[peer].status.lock();
            if self.peers[peer].generation.load(Ordering::SeqCst) != generation {
                return; // a stale pump outliving its replaced link
            }
            if *status != PeerStatus::Connected {
                return;
            }
            *status = PeerStatus::Down;
        }
        *self.peers[peer].tx.lock() = None;
        pdc_trace::instant("net", "link_down", vec![("peer", peer.into())]);
        if self.dialer_for(peer) {
            let sh = Arc::clone(self);
            let h = thread::spawn(move || sh.reconnect_loop(peer));
            self.threads.lock().push(h);
        }
    }

    /// Re-dial a down peer on the retry policy's backoff schedule.
    /// Success re-installs the link; exhaustion is a death verdict.
    fn reconnect_loop(self: Arc<Self>, peer: usize) {
        let retry = self.cfg.retry;
        let a = self.cfg.rank.min(peer) as u64;
        let b = self.cfg.rank.max(peer) as u64;
        let stream_key = 0x52434E ^ (a << 32) ^ b; // "RCN"
        for attempt in 1..=retry.max_attempts {
            if self.is_shutting_down() || self.known_dead(peer) {
                pdc_trace::flush_thread();
                return;
            }
            thread::sleep(retry.backoff(self.cfg.session, stream_key, attempt));
            let addr = self.addrs.lock()[peer];
            let Some(addr) = addr else { continue };
            let Ok(stream) = TcpStream::connect_timeout(&addr, Duration::from_millis(500)) else {
                continue;
            };
            if self.send_hello(&stream).is_err() {
                continue;
            }
            if self.install_stream(peer, stream).is_ok() {
                pdc_trace::counter("net", "reconnects", 1);
                pdc_trace::instant("net", "reconnected", vec![("peer", peer.into())]);
                pdc_trace::flush_thread();
                return;
            }
        }
        // The redial budget is spent: the dialer-side death verdict.
        if let Some(handle) = self.wait_handle() {
            if handle.mark_dead(peer) {
                pdc_trace::counter("net", "deaths_detected", 1);
                pdc_trace::instant("net", "redial_exhausted", vec![("peer", peer.into())]);
            }
        }
        pdc_trace::flush_thread();
    }

    // --- background threads -------------------------------------------

    /// Admit inbound connections after the mesh formed: re-dials of a
    /// broken link, or (for rank 0) nothing — but the loop runs
    /// everywhere for symmetry.
    fn accept_loop(self: Arc<Self>) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.is_shutting_down() {
                        break;
                    }
                    // Bad handshakes just drop the connection.
                    if let Ok(peer) = self.read_hello(&stream) {
                        let _ = self.install_stream(peer, stream);
                    }
                }
                Err(_) => {
                    if self.is_shutting_down() {
                        break;
                    }
                }
            }
        }
        pdc_trace::flush_thread();
    }

    /// Scan every peer's `last_seen` clock; silence past the heartbeat
    /// timeout is the acceptor-side death verdict. Peers that said
    /// goodbye are exempt — their silence is retirement, not death.
    fn detector_loop(self: Arc<Self>, handle: WireHandle) {
        let timeout_ns = self.cfg.heartbeat_timeout.as_nanos() as u64;
        loop {
            if self.is_shutting_down() {
                break;
            }
            thread::sleep(self.cfg.heartbeat_interval);
            let now = self.now_ns();
            for peer in 0..self.cfg.size {
                if peer == self.cfg.rank
                    || handle.is_dead(peer)
                    || *self.peers[peer].status.lock() == PeerStatus::Closed
                {
                    continue;
                }
                let seen = self.peers[peer].last_seen.load(Ordering::Relaxed);
                if now.saturating_sub(seen) > timeout_ns && handle.mark_dead(peer) {
                    pdc_trace::counter("net", "deaths_detected", 1);
                    pdc_trace::instant("net", "heartbeat_timeout", vec![("peer", peer.into())]);
                }
            }
        }
        pdc_trace::flush_thread();
    }

    /// Join every thread this transport ever spawned. Pumps notice the
    /// shutdown flag within one heartbeat interval (all socket reads
    /// and queue waits are timeout-bounded); threads spawned *while*
    /// draining (a last reconnect) are caught by re-checking.
    fn join_pumps(&self) {
        loop {
            let handle = self.threads.lock().pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
    }
}

fn bad(msg: &'static str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_mpc::prelude::*;
    use std::sync::atomic::AtomicUsize;

    static SESSION_SALT: AtomicUsize = AtomicUsize::new(0);

    /// A scratch dir + session id unique to one test.
    fn scratch(name: &str) -> (PathBuf, u64) {
        let salt = SESSION_SALT.fetch_add(1, Ordering::Relaxed);
        let pid = std::process::id();
        let dir = std::env::temp_dir().join(format!("pdc-net-{name}-{pid}-{salt}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let session = ((pid as u64) << 20) | salt as u64;
        (dir, session)
    }

    /// Run `body(rank)` for every rank on its own thread, each with a
    /// fresh transport joined to the same session — np processes
    /// faked as np threads, exercising the full TCP path.
    fn with_mesh<T: Send + 'static>(
        name: &str,
        np: usize,
        tune: impl Fn(&mut NetConfig) + Sync,
        body: impl Fn(usize, Arc<TcpTransport>) -> T + Sync,
    ) -> Vec<T> {
        let (dir, session) = scratch(name);
        let rendezvous = dir.join("rendezvous.addr");
        let results: Vec<T> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..np)
                .map(|rank| {
                    let rendezvous = rendezvous.clone();
                    let tune = &tune;
                    let body = &body;
                    scope.spawn(move || {
                        let mut cfg = NetConfig::new(rank, np, session, rendezvous);
                        tune(&mut cfg);
                        let transport = TcpTransport::connect(cfg).expect("join");
                        body(rank, transport)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let _ = std::fs::remove_dir_all(&dir);
        results
    }

    #[test]
    fn mesh_forms_and_ring_passes_messages() {
        let outputs = with_mesh(
            "ring",
            3,
            |_| {},
            |rank, transport| {
                let comm = World::new(3).attach(transport.clone() as Arc<dyn pdc_mpc::Transport>);
                let next = (rank + 1) % 3;
                let prev = (rank + 2) % 3;
                comm.send(next, 7, &format!("from {rank}")).unwrap();
                let got: String = comm.recv(Source::Rank(prev), TagSel::Tag(7)).unwrap();
                transport.shutdown();
                got
            },
        );
        assert_eq!(
            outputs,
            vec![
                "from 2".to_string(),
                "from 0".to_string(),
                "from 1".to_string()
            ]
        );
    }

    #[test]
    fn ssend_and_send_reliable_cross_the_wire() {
        let sums = with_mesh(
            "rel",
            2,
            |_| {},
            |rank, transport| {
                let comm = World::new(2).attach(transport.clone() as Arc<dyn pdc_mpc::Transport>);
                let out = if rank == 0 {
                    comm.ssend(1, 1, &10u64).unwrap();
                    comm.send_reliable(1, 2, &32u64).unwrap();
                    0
                } else {
                    let a: u64 = comm.recv(Source::Rank(0), TagSel::Tag(1)).unwrap();
                    let b: u64 = comm.recv(Source::Rank(0), TagSel::Tag(2)).unwrap();
                    a + b
                };
                transport.shutdown();
                out
            },
        );
        assert_eq!(sums, vec![0, 42]);
    }

    #[test]
    fn collectives_run_over_the_wire() {
        let results = with_mesh(
            "coll",
            4,
            |_| {},
            |rank, transport| {
                let comm = World::new(4).attach(transport.clone() as Arc<dyn pdc_mpc::Transport>);
                let root_value = if rank == 0 { Some(99u64) } else { None };
                let b: u64 = comm.bcast(0, root_value).unwrap();
                let sum: u64 = comm.allreduce(rank as u64, ops::sum).unwrap();
                let gathered: Option<Vec<u64>> = comm.gather(0, rank as u64).unwrap();
                transport.shutdown();
                (b, sum, gathered)
            },
        );
        for (rank, (b, sum, gathered)) in results.into_iter().enumerate() {
            assert_eq!(b, 99);
            assert_eq!(sum, 6);
            if rank == 0 {
                assert_eq!(gathered, Some(vec![0, 1, 2, 3]));
            } else {
                assert_eq!(gathered, None);
            }
        }
    }

    #[test]
    fn severed_peer_is_detected_and_survivors_shrink() {
        let fast = |cfg: &mut NetConfig| {
            cfg.heartbeat_interval = Duration::from_millis(20);
            cfg.heartbeat_timeout = Duration::from_millis(400);
        };
        let survivors = with_mesh("sever", 3, fast, |rank, transport| {
            let comm = World::new(3).attach(transport.clone() as Arc<dyn pdc_mpc::Transport>);
            if rank == 2 {
                // Die without a goodbye: no Bye, no crash notice.
                transport.sever();
                return 0;
            }
            // Survivors block on the dead rank until the failure
            // detector (heartbeat timeout or redial exhaustion)
            // interrupts them with PeerGone.
            let err = comm
                .recv::<u64>(Source::Rank(2), TagSel::Tag(5))
                .unwrap_err();
            assert!(
                matches!(err, MpcError::PeerGone { rank: 2 }),
                "expected PeerGone for rank 2, got {err:?}"
            );
            let shrunk = comm.shrink().unwrap();
            assert_eq!(shrunk.size(), 2);
            // The shrunk world still works end to end.
            let total: u64 = shrunk
                .allreduce(10 + shrunk.rank() as u64, ops::sum)
                .unwrap();
            transport.shutdown();
            total
        });
        assert_eq!(survivors, vec![21, 21, 0]);
    }

    #[test]
    fn from_env_requires_all_variables() {
        // Deliberately does not set the variables; the error must name
        // the missing one. (Env mutation is avoided: tests run in
        // parallel threads of one process.)
        let err = NetConfig::from_env().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("PDC_NET_"));
    }

    #[test]
    fn sends_to_linkless_peers_are_vacuous() {
        let (dir, session) = scratch("solo");
        let cfg = NetConfig::new(0, 1, session, dir.join("rendezvous.addr"));
        let transport = TcpTransport::connect(cfg).unwrap();
        assert_eq!(transport.size(), 1);
        assert_eq!(transport.hostnames(), vec!["localhost".to_string()]);
        transport.shutdown();
        transport.shutdown(); // idempotent
        let _ = std::fs::remove_dir_all(&dir);
    }
}
