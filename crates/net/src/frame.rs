//! The wire format: length-framed, checksummed, versioned.
//!
//! Every frame is a fixed 40-byte header followed by `len` payload
//! bytes:
//!
//! ```text
//! offset  size  field
//!      0     4  magic      "PDCN"
//!      4     2  version    wire protocol version (little-endian, = 1)
//!      6     1  kind       FrameKind discriminant
//!      7     1  flags      bit 0 overtake, bit 1 retransmit
//!      8     4  src        sender's rank (world rank for control
//!                          frames; *group* rank within comm_id for
//!                          Data — the link itself identifies the
//!                          sending process)
//!     12     4  tag        message tag (i32; meaningful for Data)
//!     16     8  comm_id    destination communicator (Data)
//!     24     8  ack_id     delivery-ack correlation id (Data/Ack)
//!     32     4  len        payload length in bytes
//!     36     4  crc32      IEEE CRC-32 over bytes 0..36 + payload
//! ```
//!
//! All integers are little-endian. A frame that fails any validation —
//! bad magic, unknown version or kind, oversized length, checksum
//! mismatch — poisons the connection it arrived on: the reader treats
//! the stream as corrupt and tears the link down rather than trying to
//! resynchronize, and the reconnect/failure-detection machinery takes
//! over. That is the honest response on a byte stream: once framing is
//! lost there is no reliable way back in.

use std::io::{self, Read, Write};

/// `"PDCN"` — the frame magic.
pub const WIRE_MAGIC: [u8; 4] = *b"PDCN";

/// Wire protocol version. Bumped on any incompatible layout change;
/// peers with mismatched versions refuse each other at handshake.
pub const WIRE_VERSION: u16 = 1;

/// Refuse absurd frames before allocating for them.
pub const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

const HEADER_LEN: usize = 40;
const FLAG_OVERTAKE: u8 = 1 << 0;
const FLAG_RETRANSMIT: u8 = 1 << 1;

/// What a frame is for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Handshake, dialer → acceptor: payload is a JSON [`Hello`].
    Hello,
    /// Rendezvous reply, rank 0 → joiner: payload is a JSON [`Welcome`].
    Welcome,
    /// One `pdc-mpc` message (the only kind fault injection touches).
    Data,
    /// Delivery ack: `ack_id` echoes a Data frame matched by a receive.
    Ack,
    /// Keepalive, sent on idle links; feeds the failure detector.
    Heartbeat,
    /// Crash notice: `src` announces its own (cooperative) death.
    Dead,
    /// Graceful goodbye: the peer is done; its silence is not a death.
    Bye,
}

impl FrameKind {
    fn to_u8(self) -> u8 {
        match self {
            FrameKind::Hello => 0,
            FrameKind::Welcome => 1,
            FrameKind::Data => 2,
            FrameKind::Ack => 3,
            FrameKind::Heartbeat => 4,
            FrameKind::Dead => 5,
            FrameKind::Bye => 6,
        }
    }

    fn from_u8(b: u8) -> Option<Self> {
        Some(match b {
            0 => FrameKind::Hello,
            1 => FrameKind::Welcome,
            2 => FrameKind::Data,
            3 => FrameKind::Ack,
            4 => FrameKind::Heartbeat,
            5 => FrameKind::Dead,
            6 => FrameKind::Bye,
            _ => return None,
        })
    }
}

/// One decoded wire frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the frame is for.
    pub kind: FrameKind,
    /// Sender's rank: world rank for control frames (Hello, Dead, …),
    /// group rank within `comm_id` for Data frames — on an established
    /// link the peer's process identity is known from the connection,
    /// so Data frames spend the field on what the receiver's
    /// `Status::source` must report.
    pub src: u32,
    /// Message tag (Data frames).
    pub tag: i32,
    /// Destination communicator id (Data frames).
    pub comm_id: u64,
    /// Ack correlation id (Data: ack requested; Ack: the echo).
    pub ack_id: u64,
    /// Deliver ahead of queued traffic (injected reordering).
    pub overtake: bool,
    /// Control-plane retransmission: exempt from fault injection.
    pub retransmit: bool,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// A bare frame of `kind` from world rank `src`, no payload.
    pub fn control(kind: FrameKind, src: u32) -> Self {
        Self {
            kind,
            src,
            tag: 0,
            comm_id: 0,
            ack_id: 0,
            overtake: false,
            retransmit: false,
            payload: Vec::new(),
        }
    }

    /// Serialize into one write-ready buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(HEADER_LEN + self.payload.len());
        buf.extend_from_slice(&WIRE_MAGIC);
        buf.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        buf.push(self.kind.to_u8());
        let mut flags = 0u8;
        if self.overtake {
            flags |= FLAG_OVERTAKE;
        }
        if self.retransmit {
            flags |= FLAG_RETRANSMIT;
        }
        buf.push(flags);
        buf.extend_from_slice(&self.src.to_le_bytes());
        buf.extend_from_slice(&self.tag.to_le_bytes());
        buf.extend_from_slice(&self.comm_id.to_le_bytes());
        buf.extend_from_slice(&self.ack_id.to_le_bytes());
        buf.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        let crc = crc32_finish(crc32_update(crc32_update(CRC_INIT, &buf), &self.payload));
        buf.extend_from_slice(&crc.to_le_bytes());
        buf.extend_from_slice(&self.payload);
        buf
    }

    /// Read and validate one frame from a stream. An `UnexpectedEof`
    /// before the first header byte is a clean close; anywhere else it
    /// is a truncated frame. Validation failures come back as
    /// `InvalidData` errors naming the failed check.
    pub fn read_from(r: &mut impl Read) -> io::Result<Frame> {
        let mut header = [0u8; HEADER_LEN];
        r.read_exact(&mut header)?;
        if header[0..4] != WIRE_MAGIC {
            return Err(bad("bad frame magic"));
        }
        let version = u16::from_le_bytes([header[4], header[5]]);
        if version != WIRE_VERSION {
            return Err(bad("unsupported wire version"));
        }
        let Some(kind) = FrameKind::from_u8(header[6]) else {
            return Err(bad("unknown frame kind"));
        };
        let flags = header[7];
        let src = u32::from_le_bytes(header[8..12].try_into().unwrap());
        let tag = i32::from_le_bytes(header[12..16].try_into().unwrap());
        let comm_id = u64::from_le_bytes(header[16..24].try_into().unwrap());
        let ack_id = u64::from_le_bytes(header[24..32].try_into().unwrap());
        let len = u32::from_le_bytes(header[32..36].try_into().unwrap());
        let want_crc = u32::from_le_bytes(header[36..40].try_into().unwrap());
        if len > MAX_PAYLOAD {
            return Err(bad("frame payload too large"));
        }
        let mut payload = vec![0u8; len as usize];
        r.read_exact(&mut payload)?;
        let got_crc = crc32_finish(crc32_update(
            crc32_update(CRC_INIT, &header[..HEADER_LEN - 4]),
            &payload,
        ));
        if got_crc != want_crc {
            return Err(bad("frame checksum mismatch"));
        }
        Ok(Frame {
            kind,
            src,
            tag,
            comm_id,
            ack_id,
            overtake: flags & FLAG_OVERTAKE != 0,
            retransmit: flags & FLAG_RETRANSMIT != 0,
            payload,
        })
    }

    /// Encode and write this frame, flushing the stream.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(&self.encode())?;
        w.flush()
    }
}

fn bad(msg: &'static str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Handshake payload: who is dialing, and for which session.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Hello {
    /// Session id both sides must agree on (derived from the launch).
    pub session: u64,
    /// Dialer's world rank.
    pub rank: u32,
    /// Dialer's world size (rank 0 verifies agreement at rendezvous).
    pub np: u32,
    /// Dialer's own listen address, for the rendezvous address book.
    pub listen: String,
}

/// Rendezvous reply: the address book, one listen address per rank.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Welcome {
    /// Session id (echoed).
    pub session: u64,
    /// `addrs[r]` is rank r's listen address.
    pub addrs: Vec<String>,
}

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven; the table is built at compile time.
// ---------------------------------------------------------------------

const CRC_INIT: u32 = 0xFFFF_FFFF;

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// Fold `data` into a running CRC state (start from [`CRC_INIT`]).
fn crc32_update(mut crc: u32, data: &[u8]) -> u32 {
    for &b in data {
        crc = CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc
}

fn crc32_finish(crc: u32) -> u32 {
    crc ^ 0xFFFF_FFFF
}

/// CRC-32 of one buffer (exposed for tests and tools).
pub fn crc32(data: &[u8]) -> u32 {
    crc32_finish(crc32_update(CRC_INIT, data))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_frame() -> Frame {
        Frame {
            kind: FrameKind::Data,
            src: 3,
            tag: 42,
            comm_id: 7,
            ack_id: 99,
            overtake: true,
            retransmit: true,
            payload: b"hello, wire".to_vec(),
        }
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trip_all_kinds() {
        for kind in [
            FrameKind::Hello,
            FrameKind::Welcome,
            FrameKind::Data,
            FrameKind::Ack,
            FrameKind::Heartbeat,
            FrameKind::Dead,
            FrameKind::Bye,
        ] {
            let mut f = data_frame();
            f.kind = kind;
            let bytes = f.encode();
            let back = Frame::read_from(&mut bytes.as_slice()).unwrap();
            assert_eq!(back, f);
        }
    }

    #[test]
    fn corrupt_payload_fails_checksum() {
        let mut bytes = data_frame().encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let err = Frame::read_from(&mut bytes.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"));
    }

    #[test]
    fn corrupt_header_detected() {
        // Magic.
        let mut bytes = data_frame().encode();
        bytes[0] = b'X';
        assert!(Frame::read_from(&mut bytes.as_slice()).is_err());
        // Version.
        let mut bytes = data_frame().encode();
        bytes[4] = 0xFF;
        assert!(Frame::read_from(&mut bytes.as_slice()).is_err());
        // Kind.
        let mut bytes = data_frame().encode();
        bytes[6] = 200;
        assert!(Frame::read_from(&mut bytes.as_slice()).is_err());
        // A header-field flip (tag) lands on the checksum.
        let mut bytes = data_frame().encode();
        bytes[12] ^= 0x10;
        let err = Frame::read_from(&mut bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("checksum"));
    }

    #[test]
    fn truncated_frame_is_eof() {
        let bytes = data_frame().encode();
        let cut = &bytes[..bytes.len() - 3];
        let err = Frame::read_from(&mut &cut[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn back_to_back_frames_parse_in_order() {
        let a = Frame::control(FrameKind::Heartbeat, 1);
        let b = data_frame();
        let mut bytes = a.encode();
        bytes.extend_from_slice(&b.encode());
        let mut cursor = bytes.as_slice();
        assert_eq!(Frame::read_from(&mut cursor).unwrap(), a);
        assert_eq!(Frame::read_from(&mut cursor).unwrap(), b);
    }

    #[test]
    fn hello_welcome_payloads_round_trip() {
        let hello = Hello {
            session: 9,
            rank: 2,
            np: 4,
            listen: "127.0.0.1:12345".into(),
        };
        let json = serde_json::to_vec(&hello).unwrap();
        let back: Hello = serde_json::from_slice(&json).unwrap();
        assert_eq!(back, hello);
        let welcome = Welcome {
            session: 9,
            addrs: vec!["a".into(), "b".into()],
        };
        let json = serde_json::to_vec(&welcome).unwrap();
        let back: Welcome = serde_json::from_slice(&json).unwrap();
        assert_eq!(back, welcome);
    }
}
