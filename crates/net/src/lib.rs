#![warn(missing_docs)]

//! # pdc-net — a real wire under the message-passing runtime
//!
//! The paper's Module B teaches message passing with `mpirun -np N`
//! launching real OS processes; `pdc-mpc` reproduces the semantics with
//! threads and in-process mailboxes. This crate closes the remaining
//! gap: the **same** `World`/`Comm` programs, unchanged, running as
//! `np` OS processes on localhost connected by real TCP sockets — with
//! everything a real wire forces you to face: framing, checksums,
//! handshakes, keepalives, link loss, reconnection, and peers that die
//! without saying goodbye.
//!
//! | `mpirun` world | pdc-net |
//! |---|---|
//! | `mpirun -np N prog` | `pdc-run -np N -- prog` ([`launch`]) |
//! | process manager rendezvous | rank 0's address file ([`TcpTransport::connect`]) |
//! | interconnect | length-framed, checksummed TCP ([`frame`]) |
//! | failure detector | heartbeats + redial exhaustion ([`transport`]) |
//! | `MPIX_Comm_shrink` after a node dies | same `Comm::shrink`, fed by the wire detector |
//!
//! ## The pieces
//!
//! - [`frame`] — the wire format: 40-byte header, CRC-32, versioned.
//! - [`transport`] — [`TcpTransport`]: rendezvous, full mesh, per-peer
//!   pumps, heartbeat failure detection, reconnect with deterministic
//!   backoff.
//! - [`flaky`] — [`FlakyTransport`]: frame-level fault injection, the
//!   wire analog of the thread-mode chaos chokepoint.
//! - [`launcher`] — [`launch`] and the `pdc-run` binary: the `mpirun`
//!   analog.
//!
//! ## Joining a world
//!
//! ```no_run
//! use pdc_mpc::{Transport, World};
//! use pdc_net::{NetConfig, TcpTransport};
//!
//! // Identity arrives via PDC_NET_* (set by pdc-run or `launch`).
//! let cfg = NetConfig::from_env()?;
//! let np = cfg.size;
//! let transport = TcpTransport::connect(cfg)?;
//! let comm = World::new(np).attach(transport.clone());
//! let rank_sum: u64 = comm.allreduce(comm.rank() as u64, pdc_mpc::ops::sum).unwrap();
//! transport.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

pub mod flaky;
pub mod frame;
pub mod launcher;
pub mod transport;

pub use flaky::FlakyTransport;
pub use frame::{crc32, Frame, FrameKind, Hello, Welcome, MAX_PAYLOAD, WIRE_MAGIC, WIRE_VERSION};
pub use launcher::{launch, LaunchSpec, RankExit};
pub use transport::{NetConfig, TcpTransport};
