//! `pdc-run` — the workspace's `mpirun`.
//!
//! ```text
//! pdc-run -np 4 [--session ID] [--dir DIR] -- program [args...]
//! ```
//!
//! Spawns `np` copies of `program` as OS processes on this host, each
//! with the `PDC_NET_*` environment that `pdc_net::NetConfig::from_env`
//! reads, and waits for all of them. Exits 0 only if every rank exited
//! 0; ranks killed by a signal are reported as `died (signal)`.

use std::path::PathBuf;
use std::process::ExitCode;

use pdc_net::{launch, LaunchSpec};

const USAGE: &str = "usage: pdc-run -np N [--session ID] [--dir DIR] -- program [args...]";

fn fail(msg: &str) -> ExitCode {
    eprintln!("pdc-run: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut np: Option<usize> = None;
    let mut session: Option<u64> = None;
    let mut dir: Option<PathBuf> = None;
    let mut command: Vec<String> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-np" | "--np" | "-n" => {
                let Some(value) = args.next() else {
                    return fail("-np needs a value");
                };
                match value.parse() {
                    Ok(n) if n >= 1 => np = Some(n),
                    _ => return fail("-np must be a positive integer"),
                }
            }
            "--session" => {
                let Some(value) = args.next() else {
                    return fail("--session needs a value");
                };
                match value.parse() {
                    Ok(s) => session = Some(s),
                    Err(_) => return fail("--session must be an integer"),
                }
            }
            "--dir" => {
                let Some(value) = args.next() else {
                    return fail("--dir needs a value");
                };
                dir = Some(PathBuf::from(value));
            }
            "--" => {
                command.extend(args.by_ref());
                break;
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unknown argument {other:?}")),
        }
    }
    let Some(np) = np else {
        return fail("missing -np");
    };
    if command.is_empty() {
        return fail("missing program (everything after --)");
    }
    let pid = std::process::id();
    let spec = LaunchSpec {
        np,
        session: session.unwrap_or(pid as u64),
        dir: dir.unwrap_or_else(|| std::env::temp_dir().join(format!("pdc-run-{pid}"))),
        program: PathBuf::from(&command[0]),
        args: command[1..].to_vec(),
        envs: vec![],
    };
    let exits = match launch(&spec) {
        Ok(exits) => exits,
        Err(e) => {
            eprintln!("pdc-run: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut worst = 0i32;
    for exit in &exits {
        match exit.code {
            Some(0) => {}
            Some(code) => {
                eprintln!("pdc-run: rank {} exited with code {code}", exit.rank);
                worst = worst.max(code.clamp(1, 125));
            }
            None => {
                eprintln!("pdc-run: rank {} died (signal)", exit.rank);
                worst = worst.max(1);
            }
        }
    }
    ExitCode::from(worst as u8)
}
