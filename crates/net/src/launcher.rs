//! The `mpirun` analog: spawn `np` OS processes on localhost, wire
//! them together through the rendezvous file, and collect their exits.
//!
//! Each worker is launched with the `PDC_NET_*` environment
//! ([`NetConfig::from_env`](crate::NetConfig::from_env) reads it) and
//! inherits stdout/stderr, so `pdc-run -np 4 -- prog` feels like
//! `mpirun -np 4 prog`. A worker that dies — any exit, including a
//! kill by signal — is reported, not hidden: surviving ranks are
//! expected to notice over the wire and carry on degraded, and the
//! caller decides what the overall exit means.

use std::io;
use std::path::PathBuf;
use std::process::{Child, Command};

/// One `pdc-run` invocation: what to run, how wide, and where the
/// session's scratch (rendezvous file) lives.
#[derive(Debug, Clone)]
pub struct LaunchSpec {
    /// Number of ranks (OS processes).
    pub np: usize,
    /// Session id handed to every rank (handshake validation).
    pub session: u64,
    /// Scratch directory; the rendezvous file is created inside.
    pub dir: PathBuf,
    /// Program to execute for every rank.
    pub program: PathBuf,
    /// Arguments passed to every rank verbatim.
    pub args: Vec<String>,
    /// Extra environment for every rank (on top of `PDC_NET_*`).
    pub envs: Vec<(String, String)>,
}

/// How one rank's process ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankExit {
    /// The world rank.
    pub rank: usize,
    /// Exit code; `None` means the process was killed by a signal —
    /// the "real" process fault the wire runtime must survive.
    pub code: Option<i32>,
}

impl RankExit {
    /// Clean exit?
    pub fn ok(&self) -> bool {
        self.code == Some(0)
    }

    /// Killed by a signal (no exit code at all)?
    pub fn signaled(&self) -> bool {
        self.code.is_none()
    }
}

/// Spawn `spec.np` rank processes and wait for all of them, in rank
/// order. Returns one [`RankExit`] per rank.
///
/// Spawn failures abort the launch: already-spawned ranks are killed
/// (their mesh can never form) and the error is returned.
pub fn launch(spec: &LaunchSpec) -> io::Result<Vec<RankExit>> {
    assert!(spec.np >= 1, "np must be at least 1");
    std::fs::create_dir_all(&spec.dir)?;
    let rendezvous = spec.dir.join("rendezvous.addr");
    // A stale address file from a previous session on this scratch dir
    // would send rank 0's joiners to a dead (or worse, live) listener.
    let _ = std::fs::remove_file(&rendezvous);
    let mut children: Vec<(usize, Child)> = Vec::with_capacity(spec.np);
    for rank in 0..spec.np {
        let mut cmd = Command::new(&spec.program);
        cmd.args(&spec.args)
            .env("PDC_NET_RANK", rank.to_string())
            .env("PDC_NET_SIZE", spec.np.to_string())
            .env("PDC_NET_SESSION", spec.session.to_string())
            .env("PDC_NET_RENDEZVOUS", &rendezvous);
        for (key, value) in &spec.envs {
            cmd.env(key, value);
        }
        match cmd.spawn() {
            Ok(child) => children.push((rank, child)),
            Err(e) => {
                for (_, mut child) in children {
                    let _ = child.kill();
                    let _ = child.wait();
                }
                return Err(io::Error::new(
                    e.kind(),
                    format!("spawning rank {rank} ({}): {e}", spec.program.display()),
                ));
            }
        }
    }
    let mut exits = Vec::with_capacity(spec.np);
    for (rank, mut child) in children {
        let status = child.wait()?;
        exits.push(RankExit {
            rank,
            code: status.code(),
        });
    }
    Ok(exits)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pdc-launch-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn launches_np_processes_with_rank_env() {
        // `sh -c 'exit $PDC_NET_RANK'`: each rank exits with its own
        // rank number, proving the env reached each process.
        let spec = LaunchSpec {
            np: 3,
            session: 42,
            dir: scratch("env"),
            program: PathBuf::from("/bin/sh"),
            args: vec!["-c".into(), "exit $PDC_NET_RANK".into()],
            envs: vec![],
        };
        let exits = launch(&spec).unwrap();
        let codes: Vec<Option<i32>> = exits.iter().map(|e| e.code).collect();
        assert_eq!(codes, vec![Some(0), Some(1), Some(2)]);
        assert!(exits[0].ok() && !exits[1].ok());
        let _ = std::fs::remove_dir_all(&spec.dir);
    }

    #[test]
    fn signal_killed_ranks_report_no_code() {
        let spec = LaunchSpec {
            np: 1,
            session: 7,
            dir: scratch("signal"),
            program: PathBuf::from("/bin/sh"),
            args: vec!["-c".into(), "kill -9 $$".into()],
            envs: vec![],
        };
        let exits = launch(&spec).unwrap();
        assert!(exits[0].signaled());
        assert!(!exits[0].ok());
        let _ = std::fs::remove_dir_all(&spec.dir);
    }

    #[test]
    fn spawn_failure_is_reported() {
        let spec = LaunchSpec {
            np: 2,
            session: 7,
            dir: scratch("missing"),
            program: PathBuf::from("/nonexistent/definitely-not-a-program"),
            args: vec![],
            envs: vec![],
        };
        let err = launch(&spec).unwrap_err();
        assert!(err.to_string().contains("rank 0"));
        let _ = std::fs::remove_dir_all(&spec.dir);
    }
}
