//! # pdc-trace — structured tracing & metrics for both PDC runtimes
//!
//! A dependency-free event recorder shared by `pdc-shmem` (OpenMP-style
//! threads) and `pdc-mpc` (MPI-style ranks). The paper's pedagogy is
//! *seeing* parallel behaviour; this crate is how the runtimes become
//! visible: fork/join and barrier spans, lock-contention counters,
//! per-chunk dispatch events, message/collective spans, queue-depth
//! gauges.
//!
//! ## Design
//!
//! - **Globally disabled by default.** Every recording call starts with
//!   a single `Relaxed` atomic load; when tracing is off nothing else
//!   happens — no allocation, no clock read, no locking.
//! - **Buffered per thread.** Events append to a thread-local `Vec`;
//!   the shared registry is only touched when a thread exits (its
//!   buffer is parked via a TLS destructor) or when [`drain`] runs on
//!   the calling thread. The hot path never takes a lock.
//! - **Monotonic timestamps.** All events carry nanoseconds since a
//!   process-wide epoch captured on first use, so spans from different
//!   threads and ranks line up on one timeline.
//! - **Three exporters** (see [`export`]): Chrome trace-event JSON
//!   (loadable in Perfetto / `chrome://tracing`), JSONL (one event per
//!   line, easy to grep and join with other JSONL telemetry), and a
//!   plain-text summary table with wait-time histograms.
//!
//! ## Example
//!
//! ```
//! pdc_trace::enable();
//! {
//!     let _span = pdc_trace::span("demo", "work");
//!     pdc_trace::counter("demo", "items", 3);
//! }
//! pdc_trace::disable();
//! let events = pdc_trace::drain();
//! assert_eq!(events.len(), 2);
//! let chrome = pdc_trace::export::chrome_trace(&events);
//! assert!(chrome.starts_with('['));
//! ```

pub mod export;
pub mod hist;

pub use hist::Histogram;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Key identifying one recorded metric: `(category, name)`.
pub type MetricKey = (&'static str, &'static str);

// ---------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------

/// A single argument value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(&'static str),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}

impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::U64(v as u64)
    }
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::I64(v)
    }
}

impl From<i32> for ArgValue {
    fn from(v: i32) -> Self {
        ArgValue::I64(v as i64)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}

impl From<&'static str> for ArgValue {
    fn from(v: &'static str) -> Self {
        ArgValue::Str(v)
    }
}

pub type Args = Vec<(&'static str, ArgValue)>;

/// What kind of measurement an [`Event`] carries.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A closed interval; `dur_ns` is its length.
    Span { dur_ns: u64 },
    /// A point in time.
    Instant,
    /// A monotonic increment (e.g. lock contention count += delta).
    Counter { delta: i64 },
    /// A sampled level (e.g. mailbox queue depth right now).
    Gauge { value: f64 },
}

/// One recorded event. `ts_ns` is nanoseconds since the process-wide
/// trace epoch; for spans it marks the *start* of the interval.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    pub kind: EventKind,
    /// Coarse subsystem, e.g. `"shmem"`, `"mpc"`.
    pub category: &'static str,
    /// Event name, e.g. `"barrier_wait"`, `"bcast"`.
    pub name: &'static str,
    pub ts_ns: u64,
    /// Small sequential id of the recording OS thread.
    pub tid: u32,
    pub args: Args,
}

// ---------------------------------------------------------------------
// Global state
// ---------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU32 = AtomicU32::new(0);
static EPOCH: OnceLock<Instant> = OnceLock::new();

fn registry() -> &'static Mutex<RegistryInner> {
    static REGISTRY: OnceLock<Mutex<RegistryInner>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(RegistryInner::default()))
}

#[derive(Default)]
struct RegistryInner {
    /// Buffers parked by exited threads (or drained from live ones).
    parked: Vec<Event>,
    /// Histograms parked/flushed by threads, merged per metric.
    parked_hists: BTreeMap<MetricKey, Histogram>,
    /// Labels registered for thread ids (`set_thread_label`).
    labels: Vec<(u32, String)>,
    /// Label for this whole process (`set_process_label`).
    process_label: Option<String>,
}

impl RegistryInner {
    fn merge_hists(&mut self, hists: BTreeMap<MetricKey, Histogram>) {
        for (key, h) in hists {
            self.parked_hists.entry(key).or_default().merge(&h);
        }
    }
}

/// Turn tracing on. Events recorded while enabled stay buffered until
/// [`drain`] is called.
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn tracing off. In-flight spans created while enabled still record
/// on drop so the trace has no dangling intervals.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// The fast-path check every recording call makes first.
#[inline(always)]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Nanoseconds since the process-wide trace epoch.
#[inline]
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

struct ThreadBuffer {
    tid: u32,
    events: RefCell<Vec<Event>>,
    hists: RefCell<BTreeMap<MetricKey, Histogram>>,
}

impl Drop for ThreadBuffer {
    fn drop(&mut self) {
        let events = std::mem::take(&mut *self.events.borrow_mut());
        let hists = std::mem::take(&mut *self.hists.borrow_mut());
        if !events.is_empty() || !hists.is_empty() {
            let mut reg = registry().lock().expect("trace registry");
            reg.parked.extend(events);
            reg.merge_hists(hists);
        }
    }
}

thread_local! {
    static BUFFER: ThreadBuffer = ThreadBuffer {
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        events: RefCell::new(Vec::new()),
        hists: RefCell::new(BTreeMap::new()),
    };
}

#[inline]
fn push(kind: EventKind, category: &'static str, name: &'static str, ts_ns: u64, args: Args) {
    BUFFER.with(|buf| {
        buf.events.borrow_mut().push(Event {
            kind,
            category,
            name,
            ts_ns,
            tid: buf.tid,
            args,
        });
    });
}

/// Park the calling thread's buffered events in the shared registry so
/// a later [`drain`] (from any thread) sees them. Worker threads must
/// call this before their closure returns: scoped-thread joins only
/// wait for the closure, not for TLS destructors, so relying on the
/// drop-time flush alone can race with `drain`. Both runtimes call this
/// at their join points; the destructor remains as a backstop for
/// ad-hoc threads.
pub fn flush_thread() {
    let (events, hists) = BUFFER.with(|buf| {
        (
            std::mem::take(&mut *buf.events.borrow_mut()),
            std::mem::take(&mut *buf.hists.borrow_mut()),
        )
    });
    if !events.is_empty() || !hists.is_empty() {
        let mut reg = registry().lock().expect("trace registry");
        reg.parked.extend(events);
        reg.merge_hists(hists);
    }
}

/// Collect everything recorded so far: the calling thread's own buffer
/// plus all buffers flushed or parked by other threads. Call it after
/// joining workers. Events come back sorted by timestamp.
pub fn drain() -> Vec<Event> {
    let mut own = BUFFER.with(|buf| std::mem::take(&mut *buf.events.borrow_mut()));
    {
        let mut reg = registry().lock().expect("trace registry");
        own.append(&mut reg.parked);
    }
    own.sort_by_key(|e| e.ts_ns);
    own
}

/// Put previously [`drain`]ed events back into the shared registry so a
/// later drain still sees them. Lets an intermediate observer (e.g. the
/// speedup studies) split the stream, compute row-local statistics, and
/// hand the events on to whoever exports the full timeline.
pub fn inject(events: Vec<Event>) {
    if events.is_empty() {
        return;
    }
    registry()
        .lock()
        .expect("trace registry")
        .parked
        .extend(events);
}

/// Collect the histograms recorded so far (this thread's plus every
/// flushed/parked thread's), merged per metric, and clear them. Worker
/// threads must have called [`flush_thread`] (both runtimes do at their
/// join points) for their histograms to be visible here.
pub fn drain_histograms() -> BTreeMap<MetricKey, Histogram> {
    let mut own = BUFFER.with(|buf| std::mem::take(&mut *buf.hists.borrow_mut()));
    {
        let mut reg = registry().lock().expect("trace registry");
        for (key, h) in std::mem::take(&mut reg.parked_hists) {
            own.entry(key).or_default().merge(&h);
        }
    }
    own
}

/// Drop everything recorded so far, including parked buffers and
/// thread labels. Intended for tests and for re-arming between runs.
pub fn reset() {
    BUFFER.with(|buf| {
        buf.events.borrow_mut().clear();
        buf.hists.borrow_mut().clear();
    });
    let mut reg = registry().lock().expect("trace registry");
    reg.parked.clear();
    reg.parked_hists.clear();
    reg.labels.clear();
    reg.process_label = None;
}

/// Attach a human-readable label (e.g. `"rank 2"`, `"worker 3"`) to the
/// calling thread; exporters use it to name timeline rows.
pub fn set_thread_label(label: impl Into<String>) {
    if !is_enabled() {
        return;
    }
    let tid = BUFFER.with(|buf| buf.tid);
    let mut reg = registry().lock().expect("trace registry");
    reg.labels.retain(|(t, _)| *t != tid);
    reg.labels.push((tid, label.into()));
}

/// Snapshot of registered thread labels, for exporters.
pub fn thread_labels() -> Vec<(u32, String)> {
    registry().lock().expect("trace registry").labels.clone()
}

/// Attach a human-readable label (e.g. `"rank 2 (pid 4711)"`) to this
/// whole *process*; exporters use it to name the process group when
/// traces from several OS processes are merged on one timeline.
pub fn set_process_label(label: impl Into<String>) {
    registry().lock().expect("trace registry").process_label = Some(label.into());
}

/// The registered process label, if any.
pub fn process_label() -> Option<String> {
    registry()
        .lock()
        .expect("trace registry")
        .process_label
        .clone()
}

// ---------------------------------------------------------------------
// Recording API
// ---------------------------------------------------------------------

/// RAII span: records a [`EventKind::Span`] covering its lifetime.
/// When tracing is disabled at construction this is inert (no clock
/// read, no allocation).
#[must_use = "a span records its interval when dropped"]
pub struct SpanGuard {
    start_ns: u64,
    category: &'static str,
    name: &'static str,
    args: Args,
    active: bool,
    /// Also record the duration into the `(category, name)` histogram
    /// (see [`span_hist`]).
    to_hist: bool,
}

impl SpanGuard {
    /// Attach an argument to the span after construction (recorded at
    /// drop). No-op on inert spans.
    pub fn arg(&mut self, key: &'static str, value: impl Into<ArgValue>) {
        if self.active {
            self.args.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.active {
            let dur_ns = now_ns().saturating_sub(self.start_ns);
            if self.to_hist {
                hist(self.category, self.name, dur_ns);
            }
            push(
                EventKind::Span { dur_ns },
                self.category,
                self.name,
                self.start_ns,
                std::mem::take(&mut self.args),
            );
        }
    }
}

/// Open a span; it records when dropped.
#[inline]
pub fn span(category: &'static str, name: &'static str) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard {
            start_ns: 0,
            category,
            name,
            args: Vec::new(),
            active: false,
            to_hist: false,
        };
    }
    SpanGuard {
        start_ns: now_ns(),
        category,
        name,
        args: Vec::new(),
        active: true,
        to_hist: false,
    }
}

/// Open a span that *additionally* records its duration (nanoseconds)
/// into the `(category, name)` [`Histogram`] on drop, so the metric
/// gets both a timeline interval and a percentile distribution.
#[inline]
pub fn span_hist(category: &'static str, name: &'static str) -> SpanGuard {
    let mut guard = span(category, name);
    guard.to_hist = guard.active;
    guard
}

/// Open a span with arguments attached up front.
#[inline]
pub fn span_with(category: &'static str, name: &'static str, args: Args) -> SpanGuard {
    let mut guard = span(category, name);
    if guard.active {
        guard.args = args;
    }
    guard
}

/// Record a point-in-time event.
#[inline]
pub fn instant(category: &'static str, name: &'static str, args: Args) {
    if !is_enabled() {
        return;
    }
    push(EventKind::Instant, category, name, now_ns(), args);
}

/// Record a monotonic counter increment.
#[inline]
pub fn counter(category: &'static str, name: &'static str, delta: i64) {
    if !is_enabled() {
        return;
    }
    push(
        EventKind::Counter { delta },
        category,
        name,
        now_ns(),
        Vec::new(),
    );
}

/// Record a sampled gauge level.
#[inline]
pub fn gauge(category: &'static str, name: &'static str, value: f64) {
    if !is_enabled() {
        return;
    }
    push(
        EventKind::Gauge { value },
        category,
        name,
        now_ns(),
        Vec::new(),
    );
}

/// Record one sample into the `(category, name)` histogram — barrier
/// waits, queue depths, RTTs. Unlike events, histogram samples are
/// pre-aggregated per thread (fixed memory however many samples) and
/// come back merged via [`drain_histograms`]; percentiles merged across
/// threads or processes are exact over the union of samples.
#[inline]
pub fn hist(category: &'static str, name: &'static str, value: u64) {
    if !is_enabled() {
        return;
    }
    BUFFER.with(|buf| {
        buf.hists
            .borrow_mut()
            .entry((category, name))
            .or_default()
            .record(value);
    });
}

/// Run `f` with tracing enabled and hand back its result plus every
/// event it recorded. Restores the previous enabled state afterwards.
pub fn with_tracing<R>(f: impl FnOnce() -> R) -> (R, Vec<Event>) {
    let was_enabled = is_enabled();
    reset();
    enable();
    let result = f();
    if !was_enabled {
        disable();
    }
    (result, drain())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    // The enable flag and registry are process-global; serialize the
    // tests that toggle them.
    static GUARD: StdMutex<()> = StdMutex::new(());

    #[test]
    fn disabled_records_nothing() {
        let _g = GUARD.lock().unwrap();
        reset();
        disable();
        {
            let _span = span("t", "noop");
            counter("t", "c", 1);
            gauge("t", "g", 2.0);
            instant("t", "i", Vec::new());
        }
        assert!(drain().is_empty());
    }

    #[test]
    fn span_counter_gauge_roundtrip() {
        let _g = GUARD.lock().unwrap();
        let ((), events) = with_tracing(|| {
            let mut s = span("t", "outer");
            s.arg("k", 7u64);
            counter("t", "hits", 2);
            gauge("t", "depth", 1.5);
        });
        assert_eq!(events.len(), 3);
        let span_ev = events.iter().find(|e| e.name == "outer").unwrap();
        assert!(matches!(span_ev.kind, EventKind::Span { .. }));
        assert_eq!(span_ev.args, vec![("k", ArgValue::U64(7))]);
        assert!(events
            .iter()
            .any(|e| e.kind == EventKind::Counter { delta: 2 }));
        assert!(events
            .iter()
            .any(|e| e.kind == EventKind::Gauge { value: 1.5 }));
    }

    #[test]
    fn worker_thread_buffers_park_on_exit() {
        let _g = GUARD.lock().unwrap();
        let ((), events) = with_tracing(|| {
            std::thread::scope(|scope| {
                for _ in 0..3 {
                    scope.spawn(|| {
                        {
                            let _s = span("t", "worker");
                        }
                        flush_thread();
                    });
                }
            });
        });
        assert_eq!(events.iter().filter(|e| e.name == "worker").count(), 3);
        // Three distinct worker thread ids.
        let tids: std::collections::BTreeSet<u32> = events.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 3);
    }

    #[test]
    fn histograms_record_flush_and_drain() {
        let _g = GUARD.lock().unwrap();
        reset();
        enable();
        hist("t", "rtt", 100);
        hist("t", "rtt", 300);
        {
            let _s = span_hist("t", "wait");
        }
        std::thread::scope(|scope| {
            scope.spawn(|| {
                hist("t", "rtt", 200);
                flush_thread();
            });
        });
        disable();
        let hists = drain_histograms();
        let rtt = &hists[&("t", "rtt")];
        assert_eq!(rtt.count(), 3);
        assert_eq!((rtt.min(), rtt.max()), (100, 300));
        assert_eq!(hists[&("t", "wait")].count(), 1);
        // Drained means gone: a second drain is empty.
        assert!(drain_histograms().is_empty());
        reset();
    }

    #[test]
    fn disabled_hist_records_nothing() {
        let _g = GUARD.lock().unwrap();
        reset();
        disable();
        hist("t", "rtt", 5);
        let _s = span_hist("t", "wait");
        drop(_s);
        assert!(drain_histograms().is_empty());
    }

    #[test]
    fn timestamps_are_monotone_after_drain_sort() {
        let _g = GUARD.lock().unwrap();
        let ((), events) = with_tracing(|| {
            for _ in 0..10 {
                instant("t", "tick", Vec::new());
            }
        });
        assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }
}
