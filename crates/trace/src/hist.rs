//! Fixed-precision percentile histograms.
//!
//! [`Histogram`] is the workspace's one value-distribution type: the
//! summary exporter's per-span duration histogram, the runtimes'
//! barrier-wait / mailbox-depth / RTT recorders, and `pdc-insight`'s
//! cross-process percentile reports all share this bucketing.
//!
//! ## Bucketing
//!
//! HDR-style log-linear buckets: values below [`SUBBUCKETS`] are exact
//! (one bucket per value); above that, each power-of-two octave is
//! split into [`SUBBUCKETS`] linear sub-buckets, bounding the relative
//! quantization error by `1 / SUBBUCKETS` (6.25%). Indexing is a pure
//! function of the value — no configuration, no dynamic range to agree
//! on — so histograms recorded by *different processes* merge by plain
//! bucket-count addition. That mergeability is the point: the wire
//! study's per-rank processes each export their own histograms, and the
//! driver folds them into one distribution whose percentiles are exact
//! over the union of samples (up to the fixed quantization).
//!
//! Percentiles are deterministic: bucket counts are integers, the
//! representative value of a bucket is a fixed midpoint, and the walk
//! is integer arithmetic — two processes that recorded the same values
//! report byte-identical p50/p90/p99.

use std::fmt::Write as _;

/// Sub-buckets per power-of-two octave; also the exact-value threshold.
pub const SUBBUCKETS: u64 = 16;
const SUB_BITS: u32 = 4; // log2(SUBBUCKETS)

/// Total bucket count: exact buckets `[0, SUBBUCKETS)` plus
/// `SUBBUCKETS` linear sub-buckets for each octave up to `u64::MAX`.
pub const BUCKETS: usize = (SUBBUCKETS as usize) * (64 - SUB_BITS as usize + 1);

/// Bucket index for a value. Total order preserving: `a <= b` implies
/// `index(a) <= index(b)`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUBBUCKETS {
        v as usize
    } else {
        let e = 63 - v.leading_zeros(); // v in [2^e, 2^(e+1))
        let sub = (v >> (e - SUB_BITS)) - SUBBUCKETS; // top mantissa bits
        (e - SUB_BITS + 1) as usize * SUBBUCKETS as usize + sub as usize
    }
}

/// Smallest value landing in bucket `idx`.
#[inline]
pub fn bucket_low(idx: usize) -> u64 {
    if idx < SUBBUCKETS as usize {
        idx as u64
    } else {
        let octave = idx / SUBBUCKETS as usize - 1; // 0-based above exact range
        let sub = (idx % SUBBUCKETS as usize) as u64;
        (SUBBUCKETS + sub) << octave
    }
}

/// Width of bucket `idx` (1 for the exact range).
#[inline]
pub fn bucket_width(idx: usize) -> u64 {
    if idx < SUBBUCKETS as usize {
        1
    } else {
        1u64 << (idx / SUBBUCKETS as usize - 1)
    }
}

/// Deterministic representative value for bucket `idx` (the midpoint;
/// the exact value itself in the exact range).
#[inline]
pub fn bucket_mid(idx: usize) -> u64 {
    bucket_low(idx).saturating_add(bucket_width(idx) / 2)
}

/// A mergeable fixed-precision value histogram. See the module docs.
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>, // sparse in spirit, dense in memory (BUCKETS slots)
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("min", &self.min)
            .field("max", &self.max)
            .field("p50", &self.percentile(50.0))
            .field("p99", &self.percentile(99.0))
            .finish()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Record one value `n` times.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(v)] += n;
        self.count += n;
        self.sum += v as u128 * n as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another histogram in: afterwards `self` reports the union
    /// of both sample sets. This is the cross-process merge — bucket
    /// indexing is configuration-free, so plain addition is exact.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Integer mean of the recorded values (0 when empty).
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum / self.count as u128) as u64
        }
    }

    /// The value at percentile `q` (0 < q <= 100): the representative
    /// of the bucket holding the `ceil(q/100 * count)`-th smallest
    /// sample, clamped to the observed `[min, max]` so quantization
    /// never reports a value outside the recorded range. Returns 0 on
    /// an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let target = target.min(self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= target {
                return bucket_mid(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// p50 / p90 / p99 shorthand.
    pub fn quantiles(&self) -> (u64, u64, u64) {
        (
            self.percentile(50.0),
            self.percentile(90.0),
            self.percentile(99.0),
        )
    }

    /// Nonzero buckets as `(index, count)` pairs, ascending index —
    /// the sparse wire form.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }

    /// Rebuild from sparse `(index, count)` pairs (inverse of
    /// [`Histogram::nonzero_buckets`] up to per-bucket value
    /// quantization: min/max/sum are reconstructed from bucket
    /// representatives).
    pub fn from_buckets(pairs: &[(usize, u64)]) -> Self {
        let mut h = Self::new();
        for &(idx, c) in pairs {
            if idx < BUCKETS {
                h.record_n(bucket_mid(idx), c);
            }
        }
        h
    }

    /// Coarse display cells for the summary table: cell `i` counts
    /// values whose microsecond magnitude has log2 = `i` (cell 0 is
    /// `< 2 µs`, the last cell absorbs everything larger). This is the
    /// one place the old ad-hoc log2 table bucketing survives — as a
    /// *view* of this histogram, not a second implementation.
    pub fn log2_us_cells(&self, cells: usize) -> Vec<u64> {
        let mut out = vec![0u64; cells];
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let us = bucket_mid(idx) / 1_000;
            let cell = if us < 2 {
                0
            } else {
                (63 - us.leading_zeros() as usize).min(cells - 1)
            };
            out[cell] += c;
        }
        out
    }

    /// Hand-rolled JSON object (this crate is dependency-free):
    /// `{"count":..,"sum":..,"min":..,"max":..,"buckets":[[idx,count],..]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
            self.count,
            self.sum,
            self.min(),
            self.max
        );
        for (i, (idx, c)) in self.nonzero_buckets().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{idx},{c}]");
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_subbucket_threshold() {
        for v in 0..SUBBUCKETS {
            let idx = bucket_index(v);
            assert_eq!(bucket_low(idx), v);
            assert_eq!(bucket_width(idx), 1);
            assert_eq!(bucket_mid(idx), v);
        }
    }

    #[test]
    fn index_is_monotone_and_bounded() {
        let mut values: Vec<u64> = (0..60)
            .flat_map(|shift| [0u64, 1, 7].map(|off| (1u64 << shift) + off))
            .collect();
        values.sort_unstable();
        let mut last = 0usize;
        for v in values {
            let idx = bucket_index(v);
            assert!(idx >= last, "v={v}");
            assert!(idx < BUCKETS);
            assert!(bucket_low(idx) <= v, "v={v} low={}", bucket_low(idx));
            assert!(v < bucket_low(idx) + bucket_width(idx), "v={v}");
            last = idx;
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn relative_error_bounded() {
        for v in [100u64, 1_000, 12_345, 1_000_000, 123_456_789] {
            let mid = bucket_mid(bucket_index(v));
            let err = (mid as f64 - v as f64).abs() / v as f64;
            assert!(err <= 1.0 / SUBBUCKETS as f64 + 1e-12, "v={v} mid={mid}");
        }
    }

    #[test]
    fn percentiles_of_uniform_ramp() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1_000); // 1ms..1s in µs-ish units
        }
        let (p50, p90, p99) = h.quantiles();
        let close = |got: u64, want: u64| {
            let err = (got as f64 - want as f64).abs() / want as f64;
            assert!(err < 0.08, "got {got}, want ~{want}");
        };
        close(p50, 500_000);
        close(p90, 900_000);
        close(p99, 990_000);
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1_000);
        assert_eq!(h.max(), 1_000_000);
    }

    #[test]
    fn merge_equals_single_pass() {
        let mut all = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for i in 0..500u64 {
            let v = (i * 37) % 10_000 + 1;
            all.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a, all, "merge must equal recording everything once");
        assert_eq!(a.quantiles(), all.quantiles());
    }

    #[test]
    fn sparse_round_trip_preserves_percentiles() {
        let mut h = Histogram::new();
        for v in [5u64, 5, 80, 900, 12_000, 12_000, 700_000] {
            h.record(v);
        }
        let back = Histogram::from_buckets(&h.nonzero_buckets());
        assert_eq!(back.count(), h.count());
        assert_eq!(back.nonzero_buckets(), h.nonzero_buckets());
        // Quantiles agree up to the fixed quantization (min/max are
        // reconstructed from bucket representatives, so the clamp in
        // `percentile` can shift endpoints by one bucket's width).
        for q in [50.0, 90.0, 99.0] {
            let (got, want) = (back.percentile(q), h.percentile(q));
            let err = (got as f64 - want as f64).abs() / want.max(1) as f64;
            assert!(
                err <= 1.0 / SUBBUCKETS as f64,
                "q={q} got={got} want={want}"
            );
        }
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantiles(), (0, 0, 0));
        assert_eq!((h.min(), h.max(), h.mean()), (0, 0, 0));
        assert_eq!(
            h.to_json(),
            "{\"count\":0,\"sum\":0,\"min\":0,\"max\":0,\"buckets\":[]}"
        );
    }

    #[test]
    fn log2_cells_match_magnitudes() {
        let mut h = Histogram::new();
        h.record(500); // < 2µs -> cell 0
        h.record(3_000); // 3µs -> cell 1
        h.record(5_000_000); // 5000µs -> cell 12 capped
        let cells = h.log2_us_cells(12);
        assert_eq!(cells[0], 1);
        assert_eq!(cells[1], 1);
        assert_eq!(cells[11], 1);
        assert_eq!(cells.iter().sum::<u64>(), 3);
    }
}
