//! Exporters for recorded traces: Chrome trace-event JSON (Perfetto /
//! `chrome://tracing`), JSONL, and a plain-text summary table.
//!
//! All three are hand-written serializers so `pdc-trace` stays
//! dependency-free; the JSON subset emitted here (numbers, escaped
//! strings, flat objects) is small enough that this is safe.

use crate::hist::Histogram;
use crate::{ArgValue, Event, EventKind, MetricKey};
use std::collections::BTreeMap;
use std::fmt::Write as _;

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn arg_json(v: &ArgValue, out: &mut String) {
    match v {
        ArgValue::U64(n) => {
            let _ = write!(out, "{n}");
        }
        ArgValue::I64(n) => {
            let _ = write!(out, "{n}");
        }
        ArgValue::F64(x) if x.is_finite() => {
            let _ = write!(out, "{x}");
        }
        ArgValue::F64(_) => out.push_str("null"),
        ArgValue::Str(s) => escape_into(s, out),
    }
}

fn args_json(args: &[(&'static str, ArgValue)], out: &mut String) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_into(k, out);
        out.push(':');
        arg_json(v, out);
    }
    out.push('}');
}

/// Render events as a Chrome trace-event JSON array. Load the output in
/// Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`: spans
/// appear as nested intervals per thread row, counters and gauges as
/// value tracks. Thread labels registered via
/// [`crate::set_thread_label`] become row names.
pub fn chrome_trace(events: &[Event]) -> String {
    // The real OS pid: merged traces from several rank processes keep
    // their rows apart instead of colliding on a synthetic pid 0.
    let pid = std::process::id();
    let mut out = String::from("[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
    };

    if let Some(label) = crate::process_label() {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":"
        );
        escape_into(&label, &mut out);
        out.push_str("}}");
    }

    for (tid, label) in crate::thread_labels() {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":"
        );
        escape_into(&label, &mut out);
        out.push_str("}}");
    }

    // Counters are recorded as deltas; Chrome counter tracks want the
    // running level, so accumulate per (category, name).
    let mut running: BTreeMap<(&str, &str), i64> = BTreeMap::new();

    for e in events {
        sep(&mut out);
        let ts_us = e.ts_ns as f64 / 1_000.0;
        match &e.kind {
            EventKind::Span { dur_ns } => {
                let dur_us = *dur_ns as f64 / 1_000.0;
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{ts_us},\"dur\":{dur_us},\"pid\":{pid},\"tid\":{},\"args\":",
                    e.name, e.category, e.tid
                );
                args_json(&e.args, &mut out);
                out.push('}');
            }
            EventKind::Instant => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"ts\":{ts_us},\"s\":\"t\",\"pid\":{pid},\"tid\":{},\"args\":",
                    e.name, e.category, e.tid
                );
                args_json(&e.args, &mut out);
                out.push('}');
            }
            EventKind::Counter { delta } => {
                let level = running.entry((e.category, e.name)).or_insert(0);
                *level += delta;
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"C\",\"ts\":{ts_us},\"pid\":{pid},\"tid\":{},\"args\":{{\"{}\":{}}}}}",
                    e.name, e.category, e.tid, e.name, *level
                );
            }
            EventKind::Gauge { value } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"C\",\"ts\":{ts_us},\"pid\":{pid},\"tid\":{},\"args\":{{\"{}\":{}}}}}",
                    e.name,
                    e.category,
                    e.tid,
                    e.name,
                    if value.is_finite() { *value } else { 0.0 }
                );
            }
        }
    }
    out.push_str("\n]\n");
    out
}

/// Render events as JSONL: one self-describing JSON object per line,
/// the same shape other workspace telemetry (e.g.
/// `TrafficMatrix::to_jsonl`) uses, so streams can be concatenated.
pub fn jsonl(events: &[Event]) -> String {
    // Stamp each line with the emitting OS pid so streams merged from
    // several rank processes stay attributable (and `pdc-analyze` can
    // tell a multi-process run from sequential same-process runs).
    let pid = std::process::id();
    let mut out = String::new();
    for e in events {
        out.push('{');
        let kind = match &e.kind {
            EventKind::Span { .. } => "span",
            EventKind::Instant => "instant",
            EventKind::Counter { .. } => "counter",
            EventKind::Gauge { .. } => "gauge",
        };
        let _ = write!(
            out,
            "\"kind\":\"{kind}\",\"cat\":\"{}\",\"name\":\"{}\",\"ts_ns\":{},\"tid\":{},\"pid\":{pid}",
            e.category, e.name, e.ts_ns, e.tid
        );
        match &e.kind {
            EventKind::Span { dur_ns } => {
                let _ = write!(out, ",\"dur_ns\":{dur_ns}");
            }
            EventKind::Counter { delta } => {
                let _ = write!(out, ",\"delta\":{delta}");
            }
            EventKind::Gauge { value } if value.is_finite() => {
                let _ = write!(out, ",\"value\":{value}");
            }
            EventKind::Gauge { .. } => out.push_str(",\"value\":null"),
            EventKind::Instant => {}
        }
        if !e.args.is_empty() {
            out.push_str(",\"args\":");
            args_json(&e.args, &mut out);
        }
        out.push_str("}\n");
    }
    out
}

/// Render drained histograms as JSONL lines, one per metric:
/// `{"kind":"hist","cat":..,"name":..,"pid":..,"count":..,"sum":..,"min":..,"max":..,"buckets":[[idx,count],..]}`.
/// Lines concatenate with the event JSONL stream; rank processes in the
/// wire study append theirs to the per-rank trace file and the driver
/// (or `pdc-insight`) merges same-keyed histograms by bucket addition.
pub fn hist_jsonl(hists: &BTreeMap<MetricKey, Histogram>) -> String {
    let pid = std::process::id();
    let mut out = String::new();
    for ((cat, name), h) in hists {
        let _ = write!(out, "{{\"kind\":\"hist\",\"cat\":");
        escape_into(cat, &mut out);
        out.push_str(",\"name\":");
        escape_into(name, &mut out);
        let _ = write!(out, ",\"pid\":{pid},");
        // Histogram::to_json renders `{"count":..,...}`; splice its
        // body (everything past the opening brace) onto our prefix.
        out.push_str(&h.to_json()[1..]);
        out.push('\n');
    }
    out
}

#[derive(Default)]
struct SpanStats {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
    /// Duration distribution; the summary table renders it through
    /// [`Histogram::log2_us_cells`] so there is exactly one bucketing
    /// implementation in the workspace.
    hist: Histogram,
}

impl SpanStats {
    fn record(&mut self, dur_ns: u64) {
        self.count += 1;
        self.total_ns += dur_ns;
        if self.count == 1 || dur_ns < self.min_ns {
            self.min_ns = dur_ns;
        }
        self.max_ns = self.max_ns.max(dur_ns);
        self.hist.record(dur_ns);
    }
}

/// Width of the summary table's log2(µs) histogram column.
const SUMMARY_CELLS: usize = 12;

fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

/// Aggregate per-(category, name) statistics a study or dashboard can
/// fold into its own reporting.
pub struct MetricSummary {
    pub spans: Vec<SpanLine>,
    pub counters: Vec<CounterLine>,
    pub gauges: Vec<GaugeLine>,
}

pub struct SpanLine {
    pub category: String,
    pub name: String,
    pub count: u64,
    pub total_ns: u64,
    pub min_ns: u64,
    pub mean_ns: u64,
    pub max_ns: u64,
}

pub struct CounterLine {
    pub category: String,
    pub name: String,
    pub events: u64,
    pub total: i64,
}

pub struct GaugeLine {
    pub category: String,
    pub name: String,
    pub samples: u64,
    pub min: f64,
    pub mean: f64,
    pub max: f64,
}

/// Fold events into per-metric aggregates.
pub fn summarize(events: &[Event]) -> MetricSummary {
    let mut spans: BTreeMap<(&str, &str), SpanStats> = BTreeMap::new();
    let mut counters: BTreeMap<(&str, &str), (u64, i64)> = BTreeMap::new();
    let mut gauges: BTreeMap<(&str, &str), (u64, f64, f64, f64)> = BTreeMap::new();
    for e in events {
        let key = (e.category, e.name);
        match &e.kind {
            EventKind::Span { dur_ns } => {
                spans.entry(key).or_default().record(*dur_ns);
            }
            EventKind::Instant => {}
            EventKind::Counter { delta } => {
                let entry = counters.entry(key).or_insert((0, 0));
                entry.0 += 1;
                entry.1 += delta;
            }
            EventKind::Gauge { value } => {
                let entry = gauges
                    .entry(key)
                    .or_insert((0, f64::INFINITY, 0.0, f64::NEG_INFINITY));
                entry.0 += 1;
                entry.1 = entry.1.min(*value);
                entry.2 += value;
                entry.3 = entry.3.max(*value);
            }
        }
    }
    MetricSummary {
        spans: spans
            .into_iter()
            .map(|((cat, name), s)| SpanLine {
                category: cat.to_string(),
                name: name.to_string(),
                count: s.count,
                total_ns: s.total_ns,
                min_ns: s.min_ns,
                mean_ns: s.total_ns / s.count.max(1),
                max_ns: s.max_ns,
            })
            .collect(),
        counters: counters
            .into_iter()
            .map(|((cat, name), (events, total))| CounterLine {
                category: cat.to_string(),
                name: name.to_string(),
                events,
                total,
            })
            .collect(),
        gauges: gauges
            .into_iter()
            .map(|((cat, name), (n, min, sum, max))| GaugeLine {
                category: cat.to_string(),
                name: name.to_string(),
                samples: n,
                min,
                mean: sum / n.max(1) as f64,
                max,
            })
            .collect(),
    }
}

/// Sum of one named counter's deltas across an event stream.
///
/// This is the reconciliation primitive for fault accounting:
/// `reproduce --trace --chaos` (and the chaos test suite) check that
/// the tracer's `chaos/...` counter totals equal the fault ledger's
/// fields *exactly* — every injected fault observed, every observed
/// fault injected. Returns 0 when the counter never fired.
pub fn counter_total(events: &[Event], category: &str, name: &str) -> i64 {
    events
        .iter()
        .filter(|e| e.category == category && e.name == name)
        .map(|e| match e.kind {
            EventKind::Counter { delta } => delta,
            _ => 0,
        })
        .sum()
}

/// Every counter total within one category, sorted by name — the
/// category's complete ledger as seen by the tracer.
pub fn counter_totals(events: &[Event], category: &str) -> Vec<(String, i64)> {
    summarize(events)
        .counters
        .into_iter()
        .filter(|c| c.category == category)
        .map(|c| (c.name, c.total))
        .collect()
}

/// Render a plain-text summary table: one line per span metric with a
/// count / total / min / mean / max breakdown and a log-scale duration
/// histogram, then counter totals and gauge ranges.
pub fn summary(events: &[Event]) -> String {
    let mut spans: BTreeMap<(&str, &str), SpanStats> = BTreeMap::new();
    for e in events {
        if let EventKind::Span { dur_ns } = &e.kind {
            spans
                .entry((e.category, e.name))
                .or_default()
                .record(*dur_ns);
        }
    }
    let agg = summarize(events);

    let mut out = String::new();
    let _ = writeln!(out, "trace summary: {} events", events.len());
    if !agg.spans.is_empty() {
        let _ = writeln!(
            out,
            "\n{:<28} {:>8} {:>10} {:>10} {:>10} {:>10}  histogram(µs, log2)",
            "span", "count", "total", "min", "mean", "max"
        );
        for line in &agg.spans {
            let stats = &spans[&(line.category.as_str(), line.name.as_str())];
            let hist: String = stats
                .hist
                .log2_us_cells(SUMMARY_CELLS)
                .iter()
                .map(|&b| match b {
                    0 => '.',
                    1..=9 => char::from(b'0' + b as u8),
                    _ => '#',
                })
                .collect();
            let _ = writeln!(
                out,
                "{:<28} {:>8} {:>10} {:>10} {:>10} {:>10}  [{hist}]",
                format!("{}/{}", line.category, line.name),
                line.count,
                fmt_ns(line.total_ns),
                fmt_ns(line.min_ns),
                fmt_ns(line.mean_ns),
                fmt_ns(line.max_ns),
            );
        }
    }
    if !agg.counters.is_empty() {
        let _ = writeln!(out, "\n{:<28} {:>8} {:>10}", "counter", "events", "total");
        for line in &agg.counters {
            let _ = writeln!(
                out,
                "{:<28} {:>8} {:>10}",
                format!("{}/{}", line.category, line.name),
                line.events,
                line.total,
            );
        }
    }
    if !agg.gauges.is_empty() {
        let _ = writeln!(
            out,
            "\n{:<28} {:>8} {:>10} {:>10} {:>10}",
            "gauge", "samples", "min", "mean", "max"
        );
        for line in &agg.gauges {
            let _ = writeln!(
                out,
                "{:<28} {:>8} {:>10.2} {:>10.2} {:>10.2}",
                format!("{}/{}", line.category, line.name),
                line.samples,
                line.min,
                line.mean,
                line.max,
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, EventKind};

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                kind: EventKind::Span { dur_ns: 5_000 },
                category: "shmem",
                name: "barrier_wait",
                ts_ns: 100,
                tid: 1,
                args: vec![("thread", ArgValue::U64(1))],
            },
            Event {
                kind: EventKind::Counter { delta: 3 },
                category: "shmem",
                name: "spinlock_contended",
                ts_ns: 200,
                tid: 1,
                args: Vec::new(),
            },
            Event {
                kind: EventKind::Gauge { value: 2.0 },
                category: "mpc",
                name: "queue_depth",
                ts_ns: 300,
                tid: 2,
                args: Vec::new(),
            },
            Event {
                kind: EventKind::Instant,
                category: "shmem",
                name: "chunk",
                ts_ns: 400,
                tid: 1,
                args: vec![
                    ("len", ArgValue::U64(16)),
                    ("sched", ArgValue::Str("static")),
                ],
            },
        ]
    }

    #[test]
    fn chrome_trace_shape() {
        let text = chrome_trace(&sample_events());
        assert!(text.trim_start().starts_with('['));
        assert!(text.trim_end().ends_with(']'));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"ph\":\"C\""));
        assert!(text.contains("\"ph\":\"i\""));
        assert!(text.contains("barrier_wait"));
    }

    #[test]
    fn jsonl_one_line_per_event() {
        let events = sample_events();
        let text = jsonl(&events);
        assert_eq!(text.lines().count(), events.len());
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        assert!(text.contains("\"dur_ns\":5000"));
        assert!(text.contains("\"sched\":\"static\""));
    }

    #[test]
    fn counter_total_sums_only_matching_deltas() {
        let mut events = sample_events();
        events.push(Event {
            kind: EventKind::Counter { delta: 4 },
            category: "shmem",
            name: "spinlock_contended",
            ts_ns: 500,
            tid: 2,
            args: Vec::new(),
        });
        assert_eq!(counter_total(&events, "shmem", "spinlock_contended"), 7);
        assert_eq!(counter_total(&events, "shmem", "nope"), 0);
        assert_eq!(
            counter_totals(&events, "shmem"),
            vec![("spinlock_contended".to_string(), 7)]
        );
        assert!(counter_totals(&events, "mpc").is_empty());
    }

    #[test]
    fn hist_jsonl_one_line_per_metric() {
        let mut hists: BTreeMap<MetricKey, Histogram> = BTreeMap::new();
        hists.entry(("net", "rtt")).or_default().record(1_000);
        hists.entry(("shmem", "wait")).or_default().record_n(7, 3);
        let text = hist_jsonl(&hists);
        assert_eq!(text.lines().count(), 2);
        assert!(text
            .lines()
            .all(|l| l.starts_with("{\"kind\":\"hist\"") && l.ends_with('}')));
        assert!(text.contains("\"cat\":\"net\",\"name\":\"rtt\""));
        assert!(text.contains("\"count\":3"));
        assert!(text.contains(&format!("[{},3]", crate::hist::bucket_index(7))));
    }

    #[test]
    fn summary_aggregates() {
        let text = summary(&sample_events());
        assert!(text.contains("shmem/barrier_wait"));
        assert!(text.contains("shmem/spinlock_contended"));
        assert!(text.contains("mpc/queue_depth"));
        let agg = summarize(&sample_events());
        assert_eq!(agg.spans.len(), 1);
        assert_eq!(agg.spans[0].count, 1);
        assert_eq!(agg.counters[0].total, 3);
        assert_eq!(agg.gauges[0].samples, 1);
    }
}
