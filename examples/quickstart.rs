//! Quickstart: a five-minute tour of the workspace.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use pdc_exemplars::integration;
use pdc_mpc::{ops, World};
use pdc_patternlets::registry;
use pdc_shmem::{parallel_reduce, Schedule, Team};

fn main() {
    // 1. Shared memory: the first OpenMP patternlet — SPMD hello.
    println!("== shared memory: sm.spmd with 4 threads ==");
    for line in registry::find("sm.spmd").unwrap().run(4).lines {
        println!("  {line}");
    }

    // 2. Message passing: the Figure-2 patternlet — SPMD greetings.
    println!("\n== message passing: mp.spmd with 4 processes ==");
    for line in registry::find("mp.spmd").unwrap().run(4).lines {
        println!("  {line}");
    }

    // 3. A real reduction: integrate 4/(1+x^2) over [0,1] → π.
    println!("\n== parallel reduction: computing pi ==");
    let team = Team::new(4);
    let n = 1_000_000;
    let h = 1.0 / n as f64;
    let pi = parallel_reduce(
        &team,
        0..n,
        Schedule::default(),
        0.0,
        |i| {
            let x = (i as f64 + 0.5) * h;
            4.0 / (1.0 + x * x) * h
        },
        |a, b| a + b,
    );
    println!("  midpoint rule, {n} samples: {pi:.10}");
    let trap = integration::trapezoid_shmem(integration::pi_integrand, 0.0, 1.0, n, &team);
    println!("  trapezoid rule, {n} trapezoids: {:.10}", trap.value);

    // 4. A collective: allreduce across 8 ranks.
    println!("\n== collective: allreduce(sum) over 8 ranks ==");
    let sums = World::new(8).run(|comm| comm.allreduce(comm.rank() as u64, ops::sum).unwrap());
    println!("  every rank computed: {}", sums[0]);

    println!("\nNext: cargo run --example shared_memory_module");
    println!("      cargo run --example distributed_module");
    println!("      cargo run -p pdc-bench --bin reproduce");
}
