//! The forest-fire exemplar, in depth: the percolation S-curve, plotted
//! in the terminal, with all three implementations cross-checked.
//!
//! ```text
//! cargo run --example forest_fire [--release]
//! ```

use pdc_exemplars::forestfire::{run_mpc, run_seq, run_shmem, FireConfig};
use pdc_shmem::Team;

fn main() {
    let config = FireConfig {
        size: 31,
        trials: 12,
        probabilities: (1..=20).map(|i| i as f64 / 20.0).collect(),
        seed: 1871,
    };
    println!(
        "forest fire: {0}×{0} forest, {1} trials per probability, {2} probabilities\n",
        config.size,
        config.trials,
        config.probabilities.len()
    );

    // Cross-check the three implementations bit-for-bit.
    let seq = run_seq(&config);
    let par = run_shmem(&config, &Team::new(4));
    let mpc = run_mpc(&config, 4);
    assert_eq!(seq, par, "shared-memory sweep must match sequential");
    assert_eq!(seq, mpc, "message-passing sweep must match sequential");
    println!("sequential, 4-thread, and 4-rank sweeps agree bit-for-bit\n");

    // The S-curve, as an ASCII plot.
    println!("burn probability vs. average forest damage:");
    println!("{:>5} | {:>7} | {:>6} |", "p", "burned%", "steps");
    for point in &seq {
        let bar = "█".repeat((point.avg_burned_pct / 2.0).round() as usize);
        println!(
            "{:>5.2} | {:>6.1}% | {:>6.1} | {bar}",
            point.prob, point.avg_burned_pct, point.avg_iterations
        );
    }

    // Where's the percolation knee? First p with >50% damage.
    if let Some(knee) = seq.iter().find(|pt| pt.avg_burned_pct > 50.0) {
        println!(
            "\nthe fire percolates (>50% damage) from p ≈ {:.2} — the S-curve's knee",
            knee.prob
        );
    }
}
