//! The pandemic exemplar: an agent-based SIR epidemic with the classic
//! curve plotted in the terminal — the COVID-era extension exemplar.
//!
//! ```text
//! cargo run --example pandemic
//! ```

use pdc_exemplars::pandemic::{run_mpc, run_seq, run_shmem, PandemicConfig};
use pdc_shmem::Team;

fn main() {
    let config = PandemicConfig {
        agents: 200,
        world: 42.0,
        days: 45,
        infection_prob: 0.5,
        ..Default::default()
    };
    println!(
        "pandemic: {} agents in a {:.0}×{:.0} world, {} days, p(transmit) = {}, recovery {} days\n",
        config.agents,
        config.world,
        config.world,
        config.days,
        config.infection_prob,
        config.recovery_days
    );

    let seq = run_seq(&config);
    assert_eq!(seq, run_shmem(&config, &Team::new(4)));
    assert_eq!(seq, run_mpc(&config, 4));
    println!("sequential, 4-thread, and 4-rank simulations agree exactly\n");

    println!(
        "{:>4} | {:>4} {:>4} {:>4} | curve (S=·, I=█, R=▒)",
        "day", "S", "I", "R"
    );
    let scale = |n: usize| n * 50 / config.agents;
    for d in seq.iter().step_by(3) {
        let bar = format!(
            "{}{}{}",
            "▒".repeat(scale(d.r)),
            "█".repeat(scale(d.i)),
            "·".repeat(scale(d.s)),
        );
        println!("{:>4} | {:>4} {:>4} {:>4} | {bar}", d.day, d.s, d.i, d.r);
    }

    let peak = seq.iter().max_by_key(|d| d.i).unwrap();
    let last = seq.last().unwrap();
    println!(
        "\npeak: {} infectious on day {}; final attack size {} of {} ({}%)",
        peak.i,
        peak.day,
        last.r,
        config.agents,
        last.r * 100 / config.agents
    );
}
