//! Build your own Raspberry Pi Beowulf cluster — the §II option for
//! students who outgrow a single board: plan the bill of materials,
//! provision every node, then run an MPI exemplar across "the cluster".
//!
//! ```text
//! cargo run --example cluster_build
//! ```

use pdc_exemplars::forestfire::{run_mpc, FireConfig};
use pdc_mpc::{dims_create, World};
use pdc_pikit::ClusterPlan;
use pdc_platform::{presets, ExecutionModel, Topology};

fn main() {
    // 1. Plan and cost a 4-node cluster.
    let plan = ClusterPlan::new(4, "pi");
    let bom = plan.bill_of_materials();
    println!("== 1. Bill of materials ==\n{}", bom.render_table());

    // 2. Provision every node.
    println!("== 2. Provisioning ==");
    let (devices, reports) = plan.provision();
    for (d, r) in devices.iter().zip(&reports) {
        println!(
            "  {:<6} {} tasks, {} changed, {}",
            d.hostname,
            r.entries.len(),
            r.changed(),
            if r.success() { "ok" } else { "FAILED" }
        );
    }
    assert!(plan.ready(&devices), "cluster must come up ready");
    println!(
        "cluster ready: {} nodes, {} cores total\n",
        devices.len(),
        plan.total_cores(&devices)
    );

    // 3. Lay ranks out on the cluster and run the forest fire across it.
    let platform = presets::pi_beowulf(4);
    let np = 8;
    let topo = Topology::block(&platform, np, "pi");
    println!("== 3. mpirun -np {np} across the cluster ==");
    println!("rank → host: {:?}", topo.hostnames());
    let config = FireConfig {
        size: 21,
        trials: 8,
        ..Default::default()
    };
    let hosts = World::new(np)
        .with_hostnames(topo.hostnames())
        .run(|comm| format!("rank {} on {}", comm.rank(), comm.processor_name()));
    for h in &hosts {
        println!("  {h}");
    }
    let series = run_mpc(&config, np);
    println!(
        "forest fire sweep across {} probabilities completed; p=1.0 burns {:.1}%\n",
        series.len(),
        series.last().unwrap().avg_burned_pct
    );

    // 4. What the model says about scaling this cluster.
    println!("== 4. Predicted scaling on the Pi Beowulf (slow Ethernet!) ==");
    let wl =
        ExecutionModel::new(0.05, 10.0).with_comm(100, 3_000, pdc_platform::model::CommShape::Halo);
    println!("{:>4} | {:>8} | {:>10}", "p", "speedup", "efficiency");
    for p in [1, 2, 4, 8, 16] {
        let pr = platform.predict(&wl, p);
        println!(
            "{:>4} | {:>8.2} | {:>9.0}%",
            p,
            pr.speedup,
            pr.efficiency * 100.0
        );
    }
    println!(
        "\n(compare a 2-D grid layout for halo workloads: dims_create(16, 2) = {:?})",
        dims_create(16, 2)
    );
}
