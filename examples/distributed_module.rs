//! Module B, end to end: hour 1 in "Colab", hour 2 on a "cluster".
//!
//! ```text
//! cargo run --example distributed_module
//! ```

use pdc_core::module_b::{self, ExemplarPlatform};
use pdc_core::study::{module_b_study, Scale};
use pdc_exemplars::forestfire::{self, FireConfig};
use pdc_mpc::World;

fn main() {
    // --- Hour 1: the mpi4py patternlets in the Colab notebook. ---------
    println!("== 1. The Colab notebook (Figure 2's fragment) ==\n");
    println!("{}", module_b::render_figure2());

    println!("== 2. Run all: every mpirun cell at np=4 ==");
    let nb = module_b::executed_notebook();
    let mut cells_run = 0;
    for cell in &nb.cells {
        if let pdc_courseware::notebook::Cell::Code { source, outputs } = cell {
            if source.starts_with("!mpirun") {
                cells_run += 1;
                println!("-- {source}");
                for line in outputs.iter().take(3) {
                    println!("   {line}");
                }
                if outputs.len() > 3 {
                    println!("   … ({} more lines)", outputs.len() - 3);
                }
            }
        }
    }
    println!("({cells_run} patternlet cells executed)\n");

    // --- Hour 2: pick a platform, run an exemplar, see speedup. --------
    println!("== 3. The exemplar session: forest fire on a chosen platform ==");
    let config = FireConfig {
        size: 21,
        trials: 8,
        ..Default::default()
    };
    for choice in [
        ExemplarPlatform::Colab,
        ExemplarPlatform::StOlafVm,
        ExemplarPlatform::Chameleon,
    ] {
        let platform = choice.platform();
        let topo = choice.topology(4);
        // Actually run 4 ranks with that platform's hostnames.
        let series = World::new(4).with_hostnames(topo.hostnames()).run(|comm| {
            if comm.rank() == 0 {
                Some(forestfire::run_seq(&config).len())
            } else {
                None
            }
        });
        let _ = series;
        println!(
            "  {:<28} {} nodes × {} cores — hosts seen by ranks: {:?}",
            platform.name,
            platform.nodes,
            platform.cores_per_node,
            topo.hostnames()
        );
    }

    println!("\n== 4. Scalability: measured on this host, predicted on the paper's platforms ==");
    for study in module_b_study(Scale::Quick) {
        println!("{}", study.render());
    }
    println!(
        "The Colab column stays flat at 1.00 — \"Colab's single-core VMs prevent\n\
         learners from experiencing parallel speedup\" — while the 64-core VM and\n\
         the Chameleon cluster keep climbing: the paper's §III-B lesson."
    );
}
