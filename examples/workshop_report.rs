//! The July-2020 workshop's full assessment report: cohort, Table II,
//! Figures 3–4 (with our recomputed paired t-tests), and what outfitting
//! the cohort with kits cost.
//!
//! ```text
//! cargo run --example workshop_report
//! ```

use pdc_core::Workshop;
use pdc_pikit::bom::format_dollars;
use pdc_pikit::Kit;

fn main() {
    let workshop = Workshop::july_2020();
    println!("{}", workshop.render_report());

    let kit = Kit::table1();
    println!(
        "logistics: mailing one kit per participant cost {} × {} = {}",
        format_dollars(kit.total_cents()),
        workshop.cohort.len(),
        format_dollars(kit.classroom_cents(workshop.cohort.len() as u32)),
    );
    println!(
        "(the older Pimoroni-style kit would have cost {} per learner)",
        format_dollars(Kit::pimoroni_2018().total_cents())
    );

    // The statistical punchline, stated plainly.
    let f3 = workshop.figure3();
    let f4 = workshop.figure4();
    println!(
        "\nconfidence:   t = {:.2}, p = {:.1e} (published 0.0004)",
        f3.t_test().t,
        f3.t_test().p_two_sided
    );
    println!(
        "preparedness: t = {:.2}, p = {:.1e} (published 4.18e-08)",
        f4.t_test().t,
        f4.t_test().p_two_sided
    );
}
