//! Export the courseware artifacts to disk — the files an instructor
//! would actually hand to students:
//!
//! * `artifacts/module_a.html` — the Runestone-style virtual handout.
//! * `artifacts/mpi4py_patternlets.ipynb` — the executed Colab notebook,
//!   loadable by Jupyter or uploadable to Colab.
//! * `artifacts/mpi4py_patternlets.html` — the notebook rendered.
//! * `artifacts/workshop_report.txt` — the §IV assessment report.
//!
//! ```text
//! cargo run --example export_courseware
//! ```

use std::fs;
use std::path::Path;

use pdc_core::{module_a, module_b, Workshop};
use pdc_courseware::html;
use pdc_courseware::notebook::Notebook;

fn main() -> std::io::Result<()> {
    let dir = Path::new("artifacts");
    fs::create_dir_all(dir)?;

    // Module A as a standalone HTML page.
    let module = module_a::module();
    let page = html::module_page(&module);
    fs::write(dir.join("module_a.html"), &page)?;
    println!("wrote artifacts/module_a.html ({} bytes)", page.len());

    // Module B as a real .ipynb (with outputs) and as HTML.
    let nb = module_b::executed_notebook();
    let ipynb = nb.to_ipynb();
    fs::write(dir.join("mpi4py_patternlets.ipynb"), &ipynb)?;
    println!(
        "wrote artifacts/mpi4py_patternlets.ipynb ({} bytes)",
        ipynb.len()
    );
    // Round-trip check: what we wrote re-imports identically.
    let back = Notebook::from_ipynb(&ipynb).expect("own ipynb re-imports");
    assert_eq!(back, nb, "ipynb round trip");

    let nb_page = html::notebook_page(&nb);
    fs::write(dir.join("mpi4py_patternlets.html"), &nb_page)?;
    println!(
        "wrote artifacts/mpi4py_patternlets.html ({} bytes)",
        nb_page.len()
    );

    // The assessment report.
    let report = Workshop::july_2020().render_report();
    fs::write(dir.join("workshop_report.txt"), &report)?;
    println!(
        "wrote artifacts/workshop_report.txt ({} bytes)",
        report.len()
    );

    println!("\nopen artifacts/module_a.html in a browser, or upload the .ipynb to Colab");
    Ok(())
}
