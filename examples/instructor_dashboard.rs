//! The instructor's view of a self-paced session: simulate the 22-person
//! cohort working through Module A asynchronously, then print the
//! analytics an instructor would scan after the lab — plus the runtime
//! metrics of the module's own parallel workload, so "how the class did"
//! and "how the code ran" sit on one dashboard.
//!
//! ```text
//! cargo run --example instructor_dashboard
//! ```

use pdc_core::module_a;
use pdc_core::simulate::simulate_module_a_session;
use pdc_shmem::{parallel_reduce, Schedule, Team};

fn main() {
    let report = simulate_module_a_session(2020);
    println!("{}", report.render());

    println!("per-learner completion:");
    for (learner, completion) in &report.completion {
        let bar = "█".repeat((completion * 20.0).round() as usize);
        println!("  {learner}  {bar:<20} {:>3.0}%", completion * 100.0);
    }

    // Which activities were one-shot for (almost) everyone?
    let module = module_a::module();
    let easy: Vec<String> = module
        .activities()
        .iter()
        .map(|a| report.gradebook.activity_stats(a.id()))
        .filter(|st| st.mean_attempts() <= 1.1)
        .map(|st| st.activity_id)
        .collect();
    println!("\nactivities solved first-try by nearly everyone: {easy:?}");

    // Runtime metrics: trace the module's closing workload (the pi
    // integration the learners benchmark) and the 4-rank broadcast from
    // Module B's warm-up, then print the tracer's summary table.
    let ((), events) = pdc_trace::with_tracing(|| {
        let team = Team::new(4);
        let n = 200_000;
        let sum = parallel_reduce(
            &team,
            0..n,
            Schedule::default(),
            0.0f64,
            |i| {
                let x = (i as f64 + 0.5) / n as f64;
                4.0 / (1.0 + x * x)
            },
            |a, b| a + b,
        );
        let _pi = sum / n as f64;
        let _ = pdc_mpc::World::new(4).run(|c| {
            c.bcast(0, (c.rank() == 0).then_some("hello".to_owned()))
                .unwrap()
        });
    });
    println!("\nruntime metrics for the module's parallel workload:");
    println!("{}", pdc_trace::export::summary(&events));
    println!(
        "(seeded simulation over the real cohort and module content — a fixture\n\
         generator for the analytics, not a claim about real learners)"
    );
}
