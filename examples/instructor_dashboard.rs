//! The instructor's view of a self-paced session: simulate the 22-person
//! cohort working through Module A asynchronously, then print the
//! analytics an instructor would scan after the lab.
//!
//! ```text
//! cargo run --example instructor_dashboard
//! ```

use pdc_core::module_a;
use pdc_core::simulate::simulate_module_a_session;

fn main() {
    let report = simulate_module_a_session(2020);
    println!("{}", report.render());

    println!("per-learner completion:");
    for (learner, completion) in &report.completion {
        let bar = "█".repeat((completion * 20.0).round() as usize);
        println!("  {learner}  {bar:<20} {:>3.0}%", completion * 100.0);
    }

    // Which activities were one-shot for (almost) everyone?
    let module = module_a::module();
    let easy: Vec<String> = module
        .activities()
        .iter()
        .map(|a| report.gradebook.activity_stats(a.id()))
        .filter(|st| st.mean_attempts() <= 1.1)
        .map(|st| st.activity_id)
        .collect();
    println!("\nactivities solved first-try by nearly everyone: {easy:?}");
    println!(
        "\n(seeded simulation over the real cohort and module content — a fixture\n\
         generator for the analytics, not a claim about real learners)"
    );
}
