//! Module A, end to end: the learner's two hours, compressed.
//!
//! Walks the Runestone virtual handout the way a remote learner would:
//! provision the Pi kit, read the module, run every patternlet, answer
//! the Figure-1 question, and finish with the benchmarking study.
//!
//! ```text
//! cargo run --example shared_memory_module
//! ```

use pdc_core::module_a;
use pdc_core::study::{module_a_study, Scale};
use pdc_courseware::module::Block;
use pdc_courseware::{render, Gradebook};
use pdc_patternlets::registry;
use pdc_pikit::{Device, Playbook};

fn main() {
    // --- Before class: set up the mailed kit. -------------------------
    println!("== 0. Kit setup (the chapter-1 videos, as a playbook) ==");
    let mut pi = Device::kit_pi4();
    let report = Playbook::kit_setup().run(&mut pi);
    for (task, outcome) in &report.entries {
        println!("  {task:<28} {outcome:?}");
    }
    assert!(pi.ready_for_module_a(), "kit must come up ready");

    // --- The module. ---------------------------------------------------
    let module = module_a::module();
    println!(
        "\n== 1. The virtual handout ==\n{}",
        render::render_toc(&module)
    );

    println!("== 2. The Figure-1 section, as Runestone shows it ==");
    println!("{}", module_a::render_figure1());

    // A learner answers the race-condition question (wrong, then right).
    let mut gradebook = Gradebook::new();
    let section = module.section("2.3").expect("race-conditions section");
    let activity = section
        .blocks
        .iter()
        .find_map(|b| match b {
            Block::Activity(a) => Some(a),
            _ => None,
        })
        .expect("the MC question of Figure 1");
    let first = gradebook.attempt_mc("learner", activity, 1);
    println!("answer B → {}", first.feedback);
    let second = gradebook.attempt_mc("learner", activity, 2);
    println!("answer C → {}\n", second.feedback);

    // --- The hands-on hour: run every linked patternlet at 4 threads. --
    println!("== 3. Hands-on: the handout's patternlets on 4 threads ==");
    for id in module.patternlet_ids() {
        let p = registry::find(id).expect("linked patternlets exist");
        let out = p.run(4);
        println!("-- {} ({})", p.name, p.id);
        for line in out.lines.iter().take(4) {
            println!("   {line}");
        }
        if out.lines.len() > 4 {
            println!("   … ({} more lines)", out.lines.len() - 4);
        }
    }

    // --- The last half hour: the benchmarking study. -------------------
    println!("\n== 4. The benchmarking study ==");
    for study in module_a_study(Scale::Quick) {
        println!("{}", study.render());
    }
    println!(
        "completion: {:.0}%",
        gradebook.completion("learner", &module) * 100.0
    );
}
