//! Integration: the `pdc-analyze` detectors over the real runtimes.
//!
//! True positives: the deliberately broken programs (the `sm.race`
//! patternlet, a mismatched collective, a receive-receive deadlock)
//! must be flagged with actionable diagnostics. True negatives: the
//! fixed ladder rungs and clean communication patterns must produce no
//! findings. Plus the offline path (JSONL trace -> same analyzer) and
//! byte-identical determinism of the full study artifact.

use std::time::Duration;

use pdc_analyze::{with_comm_analysis, with_race_analysis};
use pdc_mpc::World;
use pdc_patternlets::registry;

/// Timeout for the deliberately broken communication scenarios.
const BROKEN_TIMEOUT: Duration = Duration::from_millis(75);

#[test]
fn race_detector_flags_the_racy_patternlet_with_both_sites() {
    let racy = registry::find("sm.race").expect("sm.race is in the catalog");
    let (_, diags) = with_race_analysis(|| racy.run(4));
    assert!(
        !diags.is_empty(),
        "the known-racy patternlet must be detected"
    );
    for d in &diags {
        assert_eq!(d.code, "race.data-race");
        assert!(d.is_error());
        assert!(
            d.sites.iter().all(|s| s.contains("races.rs:")),
            "sites must point into the patternlet source: {:?}",
            d.sites
        );
    }
    // The unprotected counter update races read-vs-write *and*
    // write-vs-write; the detector reports both distinct pairs.
    assert_eq!(diags.len(), 2, "expected both racing access pairs");
}

#[test]
fn race_detector_stays_quiet_on_the_fixed_ladder_rungs() {
    for id in [
        "sm.private",
        "sm.critical",
        "sm.atomic",
        "sm.locks",
        "sm.reduction",
    ] {
        let p = registry::find(id).expect("ladder rung is in the catalog");
        let (_, diags) = with_race_analysis(|| p.run(4));
        assert!(
            diags.is_empty(),
            "{id} is a correct fix but was flagged: {:?}",
            diags.iter().map(|d| d.to_string()).collect::<Vec<_>>()
        );
    }
}

#[test]
fn comm_analyzer_accepts_clean_collectives() {
    let (_, diags) = with_comm_analysis(|| {
        World::new(2).run(|comm| {
            let v = comm
                .bcast(0, if comm.rank() == 0 { Some(17u64) } else { None })
                .expect("bcast");
            comm.barrier().expect("barrier");
            let _ = comm.reduce(0, v, |a: u64, b| a + b).expect("reduce");
        });
    });
    assert!(
        diags.is_empty(),
        "clean collectives flagged: {:?}",
        diags.iter().map(|d| d.to_string()).collect::<Vec<_>>()
    );
}

#[test]
fn comm_analyzer_names_both_sides_of_a_collective_mismatch() {
    let (_, diags) = with_comm_analysis(|| {
        World::new(2)
            .with_collective_timeout(BROKEN_TIMEOUT)
            .run(|comm| {
                if comm.rank() == 0 {
                    let _ = comm.bcast(0, Some(1u64));
                } else {
                    let _ = comm.barrier();
                }
            });
    });
    let mismatch = diags
        .iter()
        .find(|d| d.code == "comm.collective-mismatch")
        .expect("mismatched collective must be detected");
    assert!(mismatch.is_error());
    assert!(
        mismatch.message.contains("bcast") && mismatch.message.contains("barrier"),
        "diagnostic must name the diverging collectives: {}",
        mismatch.message
    );
}

#[test]
fn comm_analyzer_reports_the_deadlock_cycle_path() {
    let (_, diags) = with_comm_analysis(|| {
        World::new(2).run(|comm| {
            // Both ranks receive first: the 0 -> 1 -> 0 wait-for cycle.
            let other = 1 - comm.rank();
            let _: Result<(u64, _), _> = comm.recv_timeout(other, 0, BROKEN_TIMEOUT);
        });
    });
    let cycle = diags
        .iter()
        .find(|d| d.code == "comm.deadlock-cycle")
        .expect("receive-receive deadlock must be detected");
    assert!(cycle.is_error());
    assert!(
        cycle.message.contains("0 -> 1 -> 0"),
        "diagnostic must spell out the cycle: {}",
        cycle.message
    );
}

#[test]
fn offline_jsonl_analysis_agrees_with_the_online_analyzer() {
    // Capture the trace inside the analysis session so no other
    // detector harness can interleave its own mpc spans.
    let (_, _records, online) = pdc_analyze::with_comm_records(|| {
        pdc_trace::reset();
        pdc_trace::enable();
        World::new(2).run(|comm| {
            comm.barrier().expect("barrier");
            if comm.rank() == 0 {
                // Sent but never received: visible to both paths.
                comm.send(1, 9, &42u64).expect("send");
            }
        });
        pdc_trace::disable();
    });
    let events = pdc_trace::drain();
    let jsonl = pdc_trace::export::jsonl(&events);
    let offline = pdc_analyze::comm::analyze_jsonl(&jsonl);

    let codes = |diags: &[pdc_analyze::Diagnostic]| {
        let mut v: Vec<String> = diags.iter().map(|d| d.code.clone()).collect();
        v.sort();
        v.dedup();
        v
    };
    assert_eq!(codes(&online), vec!["comm.unmatched-send".to_owned()]);
    assert_eq!(
        codes(&offline),
        codes(&online),
        "offline trace analysis must reach the online verdict"
    );
}

#[test]
fn catalog_lint_is_clean() {
    let diags = pdc_analyze::lint::lint_catalog();
    assert!(
        diags.is_empty(),
        "catalog lint found problems: {:?}",
        diags.iter().map(|d| d.to_string()).collect::<Vec<_>>()
    );
}

#[test]
fn analysis_artifact_is_byte_identical_across_runs() {
    let first = pdc_core::analysis::full_analysis(pdc_core::study::Scale::Quick);
    let second = pdc_core::analysis::full_analysis(pdc_core::study::Scale::Quick);
    assert!(first.passed(), "the canonical study must pass");
    assert_eq!(
        first.to_json(),
        second.to_json(),
        "BENCH_analyze.json must be deterministic"
    );
}
