//! Failure-injection tests: the workspace's error paths, exercised
//! end-to-end. A library a downstream course would adopt must fail
//! loudly and legibly, not hang or mis-deliver.

use std::time::Duration;

use pdc_mpc::{MpcError, Source, TagSel, World};
use pdc_pikit::{Device, PiModel, Playbook};

#[test]
fn type_confusion_in_messages_is_a_decode_error() {
    // Sender serializes a string; receiver asks for a u64.
    let errs = World::new(2).run(|c| {
        if c.rank() == 0 {
            c.send(1, 0, &"not a number".to_owned()).unwrap();
            None
        } else {
            c.recv::<u64>(0, 0).err()
        }
    });
    assert!(matches!(errs[1], Some(MpcError::Decode(_))), "{errs:?}");
}

#[test]
fn scatter_without_root_data_fails_cleanly() {
    let errs = World::new(2).run(|c| {
        if c.rank() == 0 {
            // Root "forgets" to supply the data.
            c.scatter::<u32>(0, None).err()
        } else {
            // The worker would hang forever waiting; use a bounded recv
            // to prove nothing was sent.
            c.recv_timeout::<u32>(0, TagSel::Any, Duration::from_millis(80))
                .err()
        }
    });
    assert!(matches!(errs[0], Some(MpcError::CollectiveMismatch(_))));
    assert!(matches!(errs[1], Some(MpcError::Timeout { .. })));
}

#[test]
fn bcast_root_out_of_range() {
    let errs = World::new(2).run(|c| c.bcast(7, Some(1u8)).err());
    for e in errs {
        assert!(matches!(
            e,
            Some(MpcError::RankOutOfRange { rank: 7, size: 2 })
        ));
    }
}

#[test]
fn alltoall_wrong_length_rejected_everywhere() {
    let errs = World::new(3).run(|c| {
        // Everyone passes a wrong-length vector; nobody should hang.
        c.alltoall(vec![c.rank(); 2]).err()
    });
    for e in errs {
        assert!(matches!(e, Some(MpcError::CollectiveMismatch(_))));
    }
}

#[test]
fn self_send_works_but_wrong_tag_times_out() {
    World::new(1).run(|c| {
        c.send(0, 5, &1u8).unwrap();
        let err = c
            .recv_timeout::<u8>(0, 6, Duration::from_millis(50))
            .unwrap_err();
        assert!(matches!(err, MpcError::Timeout { .. }));
        // The message is still there under the right tag.
        let (v, st) = c
            .recv_timeout::<u8>(0, 5, Duration::from_millis(50))
            .unwrap();
        assert_eq!((v, st.tag), (1, 5));
    });
}

#[test]
fn any_source_does_not_steal_from_other_comms() {
    let out = World::new(4).run(|c| {
        let sub = c.split((c.rank() % 2) as i32, 0).unwrap();
        // World-rank 0 sends on the WORLD comm to world-rank 2.
        if c.rank() == 0 {
            c.send(2, 0, &99u8).unwrap();
        }
        // Meanwhile world-rank 2 listens on the SUB comm with ANY_SOURCE:
        // it must NOT see the world message.
        if c.rank() == 2 {
            let stolen =
                sub.recv_timeout::<u8>(Source::Any, TagSel::Any, Duration::from_millis(60));
            let legit: u8 = c.recv(0, 0).unwrap();
            (stolen.is_err(), legit)
        } else {
            (true, 0)
        }
    });
    assert_eq!(out[2], (true, 99));
}

#[test]
fn provisioning_reports_all_failures_not_just_the_first() {
    // No SD card AND an unsupported model: flash fails and boot fails,
    // and the report shows both.
    let mut dev = Device::new(PiModel::Pi2);
    let report = Playbook::kit_setup().run(&mut dev);
    let failures: Vec<&str> = report
        .entries
        .iter()
        .filter(|(_, o)| matches!(o, pdc_pikit::TaskOutcome::Failed(_)))
        .map(|(n, _)| n.as_str())
        .collect();
    assert!(failures.contains(&"flash system image"));
    assert!(failures.contains(&"boot from image"));
    assert!(failures.len() >= 2);
}

#[test]
fn stats_degenerate_inputs_error_not_panic() {
    use pdc_stats::ttest::paired_t_test;
    use pdc_stats::{spearman, wilcoxon_signed_rank};
    // Identical pre/post: zero-variance differences.
    assert!(paired_t_test(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]).is_err());
    assert!(wilcoxon_signed_rank(&[1.0, 2.0], &[1.0, 2.0]).is_err());
    assert!(spearman(&[2.0, 2.0], &[1.0, 3.0]).is_err());
}

#[test]
fn likert_vector_rejects_out_of_scale() {
    use pdc_assessment::LikertVector;
    assert!(LikertVector::new(vec![1, 2, 6]).is_err());
    assert!(LikertVector::new(vec![0]).is_err());
    assert!(LikertVector::new(vec![]).unwrap().is_empty());
}

#[test]
fn notebook_runtime_surfaces_user_errors() {
    use pdc_courseware::notebook::NotebookRuntime;
    let mut rt = NotebookRuntime::new();
    // Running before writing.
    let out = rt.execute_source("!mpirun -np 2 python missing.py");
    assert!(out[0].contains("no such file"));
    // Bad mpirun syntax.
    rt.execute_source("%%writefile a.py\npass");
    let out = rt.execute_source("!mpirun a.py");
    assert!(out[0].contains("usage"));
    // Unsupported magic.
    let out = rt.execute_source("%%timeit\nx = 1");
    assert!(out[0].contains("not executable"));
}

// ---------------------------------------------------------------------------
// Chaos suite: injected faults, detection, and recovery (pdc-chaos).
//
// These run real multi-rank workloads under seeded fault plans and
// assert the recovery machinery — failure detector + shrink, reliable
// send, checkpoint/restart — turns every injected-but-recoverable fault
// into a completed, exact result.
// ---------------------------------------------------------------------------

use std::sync::Arc;

use pdc_chaos::{ChaosContext, FaultInjector, FaultPlan};
use pdc_exemplars::forestfire;

#[test]
fn crashed_rank_shrinks_away_and_collective_continues() {
    let inj = Arc::new(FaultInjector::new(FaultPlan::new(11).with_crash(2, 0)));
    let out = World::new(4)
        .with_fault_injector(Arc::clone(&inj))
        .run(|c| {
            if c.chaos_step().is_err() {
                return None; // rank 2's schedule fires on its first step
            }
            // Survivors wait until the failure detector observes the
            // death (crash() wakes blocked receivers, but this rank may
            // not be blocked yet), then rebuild and keep computing.
            while c.is_alive(2) {
                std::thread::sleep(Duration::from_millis(1));
            }
            let alive = c.shrink().unwrap();
            let sum = alive.allreduce(c.rank() as u64, |a, b| a + b).unwrap();
            Some((alive.size(), sum))
        });
    assert_eq!(out[2], None, "the crashed rank unwound");
    for r in [0, 1, 3] {
        // 3 survivors; their world ranks sum to 0 + 1 + 3 = 4.
        assert_eq!(out[r], Some((3, 4)), "rank {r}: {out:?}");
    }
    let s = inj.stats();
    assert_eq!((s.crashes, s.shrinks), (1, 3));
}

#[test]
fn send_reliable_delivers_every_message_under_thirty_percent_drop() {
    let inj = Arc::new(FaultInjector::new(FaultPlan::new(9).with_drop_rate(0.3)));
    const N: u64 = 50;
    let out = World::new(2)
        .with_fault_injector(Arc::clone(&inj))
        .run(|c| {
            if c.rank() == 0 {
                for i in 0..N {
                    c.send_reliable(1, 7, &i).unwrap();
                }
                Vec::new()
            } else {
                (0..N).map(|_| c.recv::<u64>(0, 7).unwrap()).collect()
            }
        });
    // Nothing lost, nothing duplicated, order preserved (the sender
    // acks each message before the next, and retransmissions are the
    // only second copies — none needed beyond the dropped ones).
    assert_eq!(out[1], (0..N).collect::<Vec<u64>>());
    let s = inj.stats();
    assert!(s.drops > 0, "a 30% plan over 50 sends injected nothing");
    assert_eq!(s.drops_recovered, s.drops, "every drop was made good");
    assert!(s.all_recovered());
}

#[test]
fn checkpointed_forest_fire_resumes_bit_identical() {
    let config = forestfire::FireConfig {
        size: 12,
        trials: 2,
        ..Default::default()
    };
    // Rank 1 crashes on its second owned trial; the driver restarts the
    // world with the same (consumed) schedule and the restart resumes
    // from rank 0's checkpoint bank.
    let faulted = ChaosContext::new(FaultPlan::new(4).with_crash(1, 1));
    let run = forestfire::run_mpc_recoverable(&config, 3, &faulted);
    assert!(run.attempts >= 2, "a crash forces at least one restart");
    let s = faulted.stats();
    assert_eq!(s.crashes, 1);
    assert!(s.checkpoints_restored > 0, "restart skipped banked trials");
    assert!(s.all_recovered(), "{s:?}");
    // Bit-identical to both the fault-free parallel run and run_seq.
    let clean = ChaosContext::new(FaultPlan::new(4));
    let clean_run = forestfire::run_mpc_recoverable(&config, 3, &clean);
    assert_eq!(run.value, clean_run.value);
    assert_eq!(run.value, forestfire::run_seq(&config));
    assert!(run.degraded && !clean_run.degraded);
}

#[test]
fn seeded_reorder_plan_cannot_lose_or_invent_messages() {
    // Satellite regression for the mailbox's blocking waits: three
    // senders hammer one receiver through a plan that reorders and
    // delays deliveries, stressing the notify paths that a missed
    // wakeup would turn into a hang (recv_timeout bounds the damage to
    // a clean failure). The receiver must see exactly the multiset sent.
    let inj = Arc::new(FaultInjector::new(
        FaultPlan::new(21).with_reorder_rate(0.4).with_delay(0.2, 1),
    ));
    const PER_SENDER: usize = 100;
    let out = World::new(4)
        .with_fault_injector(Arc::clone(&inj))
        .run(|c| {
            if c.rank() == 0 {
                let mut got: Vec<(usize, usize)> = (0..3 * PER_SENDER)
                    .map(|_| {
                        c.recv_timeout::<(usize, usize)>(
                            Source::Any,
                            TagSel::Any,
                            Duration::from_secs(5),
                        )
                        .expect("no message may be lost")
                        .0
                    })
                    .collect();
                got.sort_unstable();
                got
            } else {
                for i in 0..PER_SENDER {
                    c.send(0, c.rank() as i32, &(c.rank(), i)).unwrap();
                }
                Vec::new()
            }
        });
    let mut want: Vec<(usize, usize)> = (1..4)
        .flat_map(|r| (0..PER_SENDER).map(move |i| (r, i)))
        .collect();
    want.sort_unstable();
    assert_eq!(out[0], want);
    let s = inj.stats();
    assert!(
        s.reorders > 0 && s.delays > 0,
        "the plan injected nothing: {s:?}"
    );
}

#[test]
fn mismatched_collective_times_out_instead_of_hanging() {
    // Rank 1 never joins the allreduce; the internal collective timeout
    // must surface that as an error on rank 0 rather than a hang.
    let errs = World::new(2)
        .with_collective_timeout(Duration::from_millis(120))
        .run(|c| {
            if c.rank() == 0 {
                c.allreduce(1u64, |a, b| a + b).err()
            } else {
                None
            }
        });
    assert!(
        matches!(errs[0], Some(MpcError::Timeout { .. })),
        "{errs:?}"
    );
}

#[test]
fn chaos_fault_history_is_deterministic_for_a_seed() {
    let run = || {
        let inj = Arc::new(FaultInjector::new(
            FaultPlan::new(33)
                .with_drop_rate(0.25)
                .with_reorder_rate(0.25),
        ));
        World::new(2)
            .with_fault_injector(Arc::clone(&inj))
            .run(|c| {
                if c.rank() == 0 {
                    for i in 0..40u64 {
                        c.send_reliable(1, 3, &i).unwrap();
                    }
                } else {
                    for _ in 0..40 {
                        let _: u64 = c.recv(0, 3).unwrap();
                    }
                }
            });
        inj.stats()
    };
    let (a, b) = (run(), run());
    assert_eq!(a, b, "same seed, same workload, same ledger");
    assert!(a.any_injected(), "the plan injected nothing: {a:?}");
}

#[test]
fn heat_rejects_unstable_configuration_before_running() {
    let bad = pdc_exemplars::heat::HeatConfig {
        alpha: 0.75,
        ..Default::default()
    };
    assert!(std::panic::catch_unwind(|| pdc_exemplars::heat::run_seq(&bad)).is_err());
}

#[test]
fn shrink_after_two_sequential_crashes() {
    // Ranks 1 and 3 die at different compute steps; the three survivors
    // observe both deaths, then rebuild in a single shrink.
    let inj = Arc::new(FaultInjector::new(
        FaultPlan::new(5).with_crash(1, 0).with_crash(3, 1),
    ));
    let out = World::new(5)
        .with_fault_injector(Arc::clone(&inj))
        .run(|c| {
            for _ in 0..2 {
                if c.chaos_step().is_err() {
                    return None;
                }
            }
            while c.is_alive(1) || c.is_alive(3) {
                std::thread::sleep(Duration::from_millis(1));
            }
            let alive = c.shrink().unwrap();
            // Gather everyone's *world* identity through the shrunk
            // communicator: dense renumbering must preserve order.
            let worlds = alive.allgather(c.rank()).unwrap();
            Some((alive.rank(), alive.size(), worlds))
        });
    assert_eq!(out[1], None, "rank 1 unwound at its first step");
    assert_eq!(out[3], None, "rank 3 unwound at its second step");
    for (shrunk_rank, world_rank) in [(0usize, 0usize), (1, 2), (2, 4)] {
        assert_eq!(
            out[world_rank],
            Some((shrunk_rank, 3, vec![0, 2, 4])),
            "world rank {world_rank}: {out:?}"
        );
    }
    let s = inj.stats();
    assert_eq!((s.crashes, s.shrinks), (2, 3));
}

#[test]
fn shrink_of_shrink_renumbers_densely() {
    // A second failure after a first shrink: the already-shrunk
    // communicator shrinks again, and both renumberings stay dense and
    // order-preserving.
    let inj = Arc::new(FaultInjector::new(
        FaultPlan::new(6).with_crash(1, 0).with_crash(3, 1),
    ));
    let out = World::new(5)
        .with_fault_injector(Arc::clone(&inj))
        .run(|c| {
            if c.chaos_step().is_err() {
                return None; // rank 1, first casualty
            }
            while c.is_alive(1) {
                std::thread::sleep(Duration::from_millis(1));
            }
            let first = c.shrink().unwrap(); // {0, 2, 3, 4}
            let first_rank = first.rank();
            // Hold the second casualty until everyone has rebuilt: a
            // death racing the first shrink would leave the members
            // with different survivor lists (and communicator ids).
            first.barrier().unwrap();
            if c.chaos_step().is_err() {
                return None; // rank 3, second casualty
            }
            while c.is_alive(3) {
                std::thread::sleep(Duration::from_millis(1));
            }
            let second = first.shrink().unwrap(); // {0, 2, 4}
            let worlds = second.allgather(c.rank()).unwrap();
            Some((first_rank, second.rank(), second.size(), worlds))
        });
    assert_eq!(out[1], None);
    assert_eq!(out[3], None);
    // world 0 -> first 0 -> second 0; world 2 -> 1 -> 1; world 4 -> 3 -> 2.
    assert_eq!(out[0], Some((0, 0, 3, vec![0, 2, 4])));
    assert_eq!(out[2], Some((1, 1, 3, vec![0, 2, 4])));
    assert_eq!(out[4], Some((3, 2, 3, vec![0, 2, 4])));
    let s = inj.stats();
    assert_eq!(s.crashes, 2);
    assert_eq!(s.shrinks, 7, "four first-round + three second-round calls");
}
