//! Failure-injection tests: the workspace's error paths, exercised
//! end-to-end. A library a downstream course would adopt must fail
//! loudly and legibly, not hang or mis-deliver.

use std::time::Duration;

use pdc_mpc::{MpcError, Source, TagSel, World};
use pdc_pikit::{Device, PiModel, Playbook};

#[test]
fn type_confusion_in_messages_is_a_decode_error() {
    // Sender serializes a string; receiver asks for a u64.
    let errs = World::new(2).run(|c| {
        if c.rank() == 0 {
            c.send(1, 0, &"not a number".to_owned()).unwrap();
            None
        } else {
            c.recv::<u64>(0, 0).err()
        }
    });
    assert!(matches!(errs[1], Some(MpcError::Decode(_))), "{errs:?}");
}

#[test]
fn scatter_without_root_data_fails_cleanly() {
    let errs = World::new(2).run(|c| {
        if c.rank() == 0 {
            // Root "forgets" to supply the data.
            c.scatter::<u32>(0, None).err()
        } else {
            // The worker would hang forever waiting; use a bounded recv
            // to prove nothing was sent.
            c.recv_timeout::<u32>(0, TagSel::Any, Duration::from_millis(80))
                .err()
        }
    });
    assert!(matches!(errs[0], Some(MpcError::CollectiveMismatch(_))));
    assert!(matches!(errs[1], Some(MpcError::Timeout { .. })));
}

#[test]
fn bcast_root_out_of_range() {
    let errs = World::new(2).run(|c| c.bcast(7, Some(1u8)).err());
    for e in errs {
        assert!(matches!(
            e,
            Some(MpcError::RankOutOfRange { rank: 7, size: 2 })
        ));
    }
}

#[test]
fn alltoall_wrong_length_rejected_everywhere() {
    let errs = World::new(3).run(|c| {
        // Everyone passes a wrong-length vector; nobody should hang.
        c.alltoall(vec![c.rank(); 2]).err()
    });
    for e in errs {
        assert!(matches!(e, Some(MpcError::CollectiveMismatch(_))));
    }
}

#[test]
fn self_send_works_but_wrong_tag_times_out() {
    World::new(1).run(|c| {
        c.send(0, 5, &1u8).unwrap();
        let err = c
            .recv_timeout::<u8>(0, 6, Duration::from_millis(50))
            .unwrap_err();
        assert!(matches!(err, MpcError::Timeout { .. }));
        // The message is still there under the right tag.
        let (v, st) = c
            .recv_timeout::<u8>(0, 5, Duration::from_millis(50))
            .unwrap();
        assert_eq!((v, st.tag), (1, 5));
    });
}

#[test]
fn any_source_does_not_steal_from_other_comms() {
    let out = World::new(4).run(|c| {
        let sub = c.split((c.rank() % 2) as i32, 0).unwrap();
        // World-rank 0 sends on the WORLD comm to world-rank 2.
        if c.rank() == 0 {
            c.send(2, 0, &99u8).unwrap();
        }
        // Meanwhile world-rank 2 listens on the SUB comm with ANY_SOURCE:
        // it must NOT see the world message.
        if c.rank() == 2 {
            let stolen =
                sub.recv_timeout::<u8>(Source::Any, TagSel::Any, Duration::from_millis(60));
            let legit: u8 = c.recv(0, 0).unwrap();
            (stolen.is_err(), legit)
        } else {
            (true, 0)
        }
    });
    assert_eq!(out[2], (true, 99));
}

#[test]
fn provisioning_reports_all_failures_not_just_the_first() {
    // No SD card AND an unsupported model: flash fails and boot fails,
    // and the report shows both.
    let mut dev = Device::new(PiModel::Pi2);
    let report = Playbook::kit_setup().run(&mut dev);
    let failures: Vec<&str> = report
        .entries
        .iter()
        .filter(|(_, o)| matches!(o, pdc_pikit::TaskOutcome::Failed(_)))
        .map(|(n, _)| n.as_str())
        .collect();
    assert!(failures.contains(&"flash system image"));
    assert!(failures.contains(&"boot from image"));
    assert!(failures.len() >= 2);
}

#[test]
fn stats_degenerate_inputs_error_not_panic() {
    use pdc_stats::ttest::paired_t_test;
    use pdc_stats::{spearman, wilcoxon_signed_rank};
    // Identical pre/post: zero-variance differences.
    assert!(paired_t_test(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]).is_err());
    assert!(wilcoxon_signed_rank(&[1.0, 2.0], &[1.0, 2.0]).is_err());
    assert!(spearman(&[2.0, 2.0], &[1.0, 3.0]).is_err());
}

#[test]
fn likert_vector_rejects_out_of_scale() {
    use pdc_assessment::LikertVector;
    assert!(LikertVector::new(vec![1, 2, 6]).is_err());
    assert!(LikertVector::new(vec![0]).is_err());
    assert!(LikertVector::new(vec![]).unwrap().is_empty());
}

#[test]
fn notebook_runtime_surfaces_user_errors() {
    use pdc_courseware::notebook::NotebookRuntime;
    let mut rt = NotebookRuntime::new();
    // Running before writing.
    let out = rt.execute_source("!mpirun -np 2 python missing.py");
    assert!(out[0].contains("no such file"));
    // Bad mpirun syntax.
    rt.execute_source("%%writefile a.py\npass");
    let out = rt.execute_source("!mpirun a.py");
    assert!(out[0].contains("usage"));
    // Unsupported magic.
    let out = rt.execute_source("%%timeit\nx = 1");
    assert!(out[0].contains("not executable"));
}

#[test]
fn heat_rejects_unstable_configuration_before_running() {
    let bad = pdc_exemplars::heat::HeatConfig {
        alpha: 0.75,
        ..Default::default()
    };
    assert!(std::panic::catch_unwind(|| pdc_exemplars::heat::run_seq(&bad)).is_err());
}
