//! Wire-transport tests: the pdc-net TCP backend driven through the
//! full workspace stack — `World::attach`, the Module B patternlet
//! suite, fault injection, and failure recovery — over real sockets.
//! Each test fakes np processes as np threads, every rank with its own
//! `TcpTransport` joined to a private rendezvous session, so the whole
//! frame/handshake/heartbeat path runs without forking.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pdc_chaos::{FaultInjector, FaultPlan, FaultStats};
use pdc_mpc::{MpcError, Source, TagSel, Transport, World};
use pdc_net::{FlakyTransport, NetConfig, TcpTransport};
use pdc_patternlets::mp::netsuite;

static SESSION_SALT: AtomicUsize = AtomicUsize::new(0);

/// A scratch dir + session id unique to one test.
fn scratch(name: &str) -> (PathBuf, u64) {
    let salt = SESSION_SALT.fetch_add(1, Ordering::Relaxed);
    let pid = std::process::id();
    let dir = std::env::temp_dir().join(format!("pdc-net-ws-{name}-{pid}-{salt}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let session = ((pid as u64) << 24) | (0x50 << 16) | salt as u64;
    (dir, session)
}

/// Run `body(rank, transport)` for every rank on its own thread, each
/// with a fresh transport joined to the same session.
fn with_mesh<T: Send + 'static>(
    name: &str,
    np: usize,
    tune: impl Fn(&mut NetConfig) + Sync,
    body: impl Fn(usize, Arc<TcpTransport>) -> T + Sync,
) -> Vec<T> {
    let (dir, session) = scratch(name);
    let rendezvous = dir.join("rendezvous.addr");
    let results: Vec<T> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..np)
            .map(|rank| {
                let rendezvous = rendezvous.clone();
                let tune = &tune;
                let body = &body;
                scope.spawn(move || {
                    let mut cfg = NetConfig::new(rank, np, session, rendezvous);
                    tune(&mut cfg);
                    let transport = TcpTransport::connect(cfg).expect("join");
                    body(rank, transport)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let _ = std::fs::remove_dir_all(&dir);
    results
}

#[test]
fn module_b_suite_runs_over_real_sockets() {
    let outputs = with_mesh(
        "suite",
        4,
        |_| {},
        |_rank, transport| {
            let comm = World::new(4).attach(transport.clone() as Arc<dyn Transport>);
            let summaries = netsuite::run_suite(&comm).unwrap();
            transport.shutdown();
            summaries
        },
    );
    // Rank 0 checked and summarized every patternlet; the other ranks
    // contribute lines but hold no verdicts.
    assert_eq!(outputs[0].len(), netsuite::NET_SUITE.len());
    for summary in &outputs[0] {
        assert!(summary.contains(": ok ("), "unexpected summary {summary:?}");
    }
    for out in &outputs[1..] {
        assert!(out.is_empty());
    }
}

#[test]
fn injected_wire_drops_are_recovered_by_send_reliable() {
    const N: u64 = 30;
    // One injector per rank, as in real multi-process runs — verdicts
    // are per (src, dst) channel counters, so each sender sees its own
    // deterministic fault stream.
    let outputs: Vec<(Vec<u64>, FaultStats)> = with_mesh(
        "flaky",
        2,
        |_| {},
        |rank, transport| {
            let injector = Arc::new(FaultInjector::new(FaultPlan::new(21).with_drop_rate(0.4)));
            let flaky = FlakyTransport::new(transport as Arc<dyn Transport>, Arc::clone(&injector));
            let comm = World::new(2)
                .with_fault_injector(Arc::clone(&injector))
                .attach(flaky.clone());
            let received = if rank == 0 {
                for i in 0..N {
                    comm.send_reliable(1, 7, &i).unwrap();
                }
                Vec::new()
            } else {
                (0..N)
                    .map(|_| comm.recv::<u64>(Source::Rank(0), TagSel::Tag(7)).unwrap())
                    .collect()
            };
            let stats = injector.stats();
            flaky.shutdown();
            (received, stats)
        },
    );
    // Nothing lost, nothing duplicated, order preserved: the sender
    // acks each message before the next leaves.
    assert_eq!(outputs[1].0, (0..N).collect::<Vec<u64>>());
    let sender = &outputs[0].1;
    assert!(
        sender.drops > 0,
        "a 40% plan over 30 sends injected nothing"
    );
    assert_eq!(sender.drops_recovered, sender.drops);
    assert!(sender.all_recovered());
}

#[test]
fn severed_wire_rank_shrinks_away_and_the_suite_continues() {
    let fast = |cfg: &mut NetConfig| {
        cfg.heartbeat_interval = Duration::from_millis(20);
        cfg.heartbeat_timeout = Duration::from_millis(400);
    };
    let outputs = with_mesh("sever", 4, fast, |rank, transport| {
        let comm = World::new(4).attach(transport.clone() as Arc<dyn Transport>);
        if rank == 3 {
            // Die without a goodbye — no Bye frame, no crash notice;
            // peers must convict on heartbeat silence alone.
            transport.sever();
            return None;
        }
        let err = comm
            .recv::<u64>(Source::Rank(3), TagSel::Tag(9))
            .unwrap_err();
        assert!(
            matches!(err, MpcError::PeerGone { rank: 3 }),
            "expected PeerGone for rank 3, got {err:?}"
        );
        let alive = comm.shrink().unwrap();
        // The full Module B suite still runs on the shrunk wire world.
        let summaries = netsuite::run_suite(&alive).unwrap();
        transport.shutdown();
        Some((alive.size(), summaries.len()))
    });
    assert_eq!(outputs[3], None, "the severed rank unwound");
    assert_eq!(outputs[0], Some((3, netsuite::NET_SUITE.len())));
    assert_eq!(outputs[1], Some((3, 0)));
    assert_eq!(outputs[2], Some((3, 0)));
}
