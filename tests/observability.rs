//! Cross-runtime invariants of the pdc-trace observability layer.
//!
//! The tracer's enable flag and registry are process-global, so every
//! test here serializes on one mutex — they all live in this one
//! integration binary for exactly that reason.

use std::sync::Mutex;

use pdc_mpc::World;
use pdc_shmem::{parallel_for, Schedule, Team};
use pdc_trace::{ArgValue, EventKind};

static TRACE_LOCK: Mutex<()> = Mutex::new(());

/// Sum of the `bytes` args on all spans with the given name.
fn span_bytes(events: &[pdc_trace::Event], name: &str) -> u64 {
    events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Span { .. }) && e.name == name)
        .filter_map(|e| {
            e.args.iter().find_map(|(k, v)| match (k, v) {
                (&"bytes", ArgValue::U64(b)) => Some(*b),
                _ => None,
            })
        })
        .sum()
}

#[test]
fn barrier_wait_events_are_threads_times_barriers() {
    let _guard = TRACE_LOCK.lock().unwrap();
    const THREADS: usize = 4;
    const BARRIERS: usize = 5;
    let ((), events) = pdc_trace::with_tracing(|| {
        let team = Team::new(THREADS);
        team.parallel(|ctx| {
            for _ in 0..BARRIERS {
                ctx.barrier();
            }
        });
    });
    let waits = events
        .iter()
        .filter(|e| e.category == "shmem" && e.name == "barrier_wait")
        .count();
    assert_eq!(
        waits,
        THREADS * BARRIERS,
        "each thread records one barrier_wait span per crossing"
    );
    // Every wait is a span with a duration and a thread arg.
    for e in events.iter().filter(|e| e.name == "barrier_wait") {
        assert!(matches!(e.kind, EventKind::Span { .. }));
        assert!(e.args.iter().any(|(k, _)| *k == "thread"));
    }
}

#[test]
fn traffic_spans_reconcile_with_traffic_matrix() {
    let _guard = TRACE_LOCK.lock().unwrap();
    let ((_, matrix), events) = pdc_trace::with_tracing(|| {
        World::new(4).run_traced(|c| {
            // A ring exchange plus a collective, so both the user path
            // and the internal reserved-tag path carry traffic.
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            c.send(next, 0, &vec![c.rank(); 8]).unwrap();
            let _: Vec<usize> = c.recv(prev, 0).unwrap();
            c.allreduce(c.rank() as u64, |a, b| a + b).unwrap()
        })
    });

    let send_spans = events
        .iter()
        .filter(|e| e.category == "mpc" && e.name == "send")
        .count() as u64;
    assert_eq!(
        send_spans,
        matrix.total_messages(),
        "every message the matrix counted has exactly one send span"
    );
    assert_eq!(
        span_bytes(&events, "send"),
        matrix.total_bytes(),
        "send-span byte args sum to the matrix's byte total"
    );
    // Every byte sent was received: recv spans reconcile too.
    assert_eq!(span_bytes(&events, "recv"), matrix.total_bytes());
}

#[test]
fn disabled_tracer_records_no_events() {
    let _guard = TRACE_LOCK.lock().unwrap();
    pdc_trace::reset();
    pdc_trace::disable();

    // Exercise both runtimes' instrumented paths with tracing off.
    let team = Team::new(3);
    let hits = std::sync::atomic::AtomicUsize::new(0);
    parallel_for(&team, 0..64, Schedule::Dynamic { chunk: 4 }, |_, _| {
        hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    });
    assert_eq!(hits.into_inner(), 64);
    team.parallel(|ctx| {
        ctx.barrier();
    });
    let _ = World::new(3).run(|c| c.allgather(c.rank()).unwrap());

    assert!(
        pdc_trace::drain().is_empty(),
        "disabled tracer must record nothing"
    );
}

#[test]
fn chunk_events_cover_the_range_once_per_schedule() {
    let _guard = TRACE_LOCK.lock().unwrap();
    for schedule in [
        Schedule::Static { chunk: Some(7) },
        Schedule::Dynamic { chunk: 5 },
        Schedule::Guided { min_chunk: 2 },
    ] {
        let ((), events) = pdc_trace::with_tracing(|| {
            let team = Team::new(3);
            parallel_for(&team, 0..100, schedule, |_, _| {});
        });
        let mut covered = 0usize;
        for e in events.iter().filter(|e| e.name == "chunk") {
            let get = |key: &str| {
                e.args.iter().find_map(|(k, v)| match v {
                    ArgValue::U64(n) if *k == key => Some(*n as usize),
                    _ => None,
                })
            };
            covered += get("len").expect("chunk has len");
            let label = e
                .args
                .iter()
                .find_map(|(k, v)| match v {
                    ArgValue::Str(s) if *k == "schedule" => Some(*s),
                    _ => None,
                })
                .expect("chunk is keyed by schedule");
            assert_eq!(label, schedule.kind_label());
        }
        assert_eq!(covered, 100, "chunk events tile the range ({schedule:?})");
    }
}

#[test]
fn chaos_ledger_reconciles_with_trace_counters() {
    let _guard = TRACE_LOCK.lock().unwrap();
    use pdc_chaos::ChaosContext;
    use pdc_exemplars::forestfire;

    // Run the canonical chaos workload under tracing: every FaultLog
    // increment is mirrored as a `chaos/<name>` counter, so the trace
    // stream's totals must equal the ledger exactly — injected vs.
    // observed reconcile to the message.
    let (stats, events) = pdc_trace::with_tracing(|| {
        let ctx = ChaosContext::new(pdc_core::chaos::canonical_fire_plan(2020));
        let config = forestfire::FireConfig {
            size: 15,
            trials: 4,
            ..Default::default()
        };
        let run = forestfire::run_mpc_recoverable(&config, pdc_core::chaos::CHAOS_NP, &ctx);
        assert_eq!(run.value, forestfire::run_seq(&config));
        ctx.stats()
    });

    let total = |name: &str| pdc_trace::export::counter_total(&events, "chaos", name) as u64;
    assert!(stats.drops > 0 && stats.crashes > 0, "{stats:?}");
    assert_eq!(total("faults_dropped"), stats.drops);
    assert_eq!(total("faults_straggled"), stats.straggler_delays);
    assert_eq!(total("faults_crashed"), stats.crashes);
    assert_eq!(total("retries"), stats.retries);
    assert_eq!(total("drops_recovered"), stats.drops_recovered);
    assert_eq!(total("crashes_recovered"), stats.crashes_recovered);
    assert_eq!(total("checkpoints_saved"), stats.checkpoints_saved);
    assert_eq!(total("checkpoints_restored"), stats.checkpoints_restored);
    assert_eq!(total("shrinks"), stats.shrinks);
    assert!(stats.all_recovered(), "{stats:?}");
    // The crash is also visible as a discrete instant event.
    assert!(events
        .iter()
        .any(|e| e.category == "chaos" && e.name == "rank_crashed"));
}

#[test]
fn chrome_export_of_a_mixed_run_is_valid_json() {
    let _guard = TRACE_LOCK.lock().unwrap();
    let ((), events) = pdc_trace::with_tracing(|| {
        let team = Team::new(2);
        team.parallel(|ctx| {
            ctx.barrier();
        });
        let _ = World::new(2).run(|c| c.bcast(0, (c.rank() == 0).then_some(1u8)).unwrap());
    });
    let chrome = pdc_trace::export::chrome_trace(&events);
    let parsed: serde_json::Value = serde_json::from_str(&chrome).expect("valid JSON");
    let entries = parsed.as_array().expect("chrome trace is a JSON array");
    assert!(entries
        .iter()
        .any(|e| e["cat"] == "shmem" && e["ph"] == "X"));
    assert!(entries.iter().any(|e| e["cat"] == "mpc" && e["ph"] == "X"));
}
