//! Every experiment in the index must regenerate its artifact with the
//! paper's load-bearing content — the machine-checkable version of
//! EXPERIMENTS.md.

use pdc_core::experiments;

fn output_of(id: &str) -> String {
    experiments::run(id).unwrap_or_else(|| panic!("experiment {id} missing"))
}

#[test]
fn table1_reports_the_papers_rows_and_total() {
    let out = output_of("table1");
    for needle in [
        "CanaKit with 2G Raspberry Pi",
        "$62.99",
        "Ethernet-USB A dongle",
        "$15.95",
        "USB A-C dongle",
        "$3.99",
        "Ethernet cable",
        "$1.55",
        "16G MicroSD",
        "$5.41",
        "Kit case",
        "$10.77",
        "Total Kit Cost",
        "$100.66",
    ] {
        assert!(out.contains(needle), "table1 missing {needle}\n{out}");
    }
}

#[test]
fn table2_reports_the_papers_means() {
    let out = output_of("table2");
    for needle in [
        "OpenMP on Raspberry Pi",
        "4.55",
        "4.45",
        "MPI & Distr. Cluster Computing",
        "4.38",
        "4.29",
    ] {
        assert!(out.contains(needle), "table2 missing {needle}");
    }
}

#[test]
fn fig1_reproduces_the_runestone_view() {
    let out = output_of("fig1");
    for needle in [
        "2.3 Race Conditions",
        "The following video will help you understand",
        "0:00/2:02",
        "What is a race condition?",
        "It is a mechanism that helps protect a resource.",
        "two or more threads attempt to modify a shared variable",
        "Activity: sp_mc_2",
    ] {
        assert!(out.contains(needle), "fig1 missing {needle}");
    }
}

#[test]
fn fig2_reproduces_the_colab_view() {
    let out = output_of("fig2");
    for needle in [
        "Single Program, Multiple Data",
        "%%writefile 00spmd.py",
        "from mpi4py import MPI",
        "comm = MPI.COMM_WORLD",
        "!mpirun --allow-run-as-root -np 4 python 00spmd.py",
        "Greetings from process 0 of 4 on d6ff4f902ed6",
        "Greetings from process 1 of 4 on d6ff4f902ed6",
        "Greetings from process 2 of 4 on d6ff4f902ed6",
        "Greetings from process 3 of 4 on d6ff4f902ed6",
    ] {
        assert!(out.contains(needle), "fig2 missing {needle}");
    }
}

#[test]
fn fig3_and_fig4_report_published_statistics() {
    let f3 = output_of("fig3");
    assert!(f3.contains("published: pre µ = 2.82, post µ = 3.59"));
    assert!(f3.contains("paired t-test"));
    let f4 = output_of("fig4");
    assert!(f4.contains("published: pre µ = 2.59, post µ = 3.77"));
    // Figure 4's labels differ from Figure 3's — both must be right.
    assert!(f3.contains("moderately"));
    assert!(f4.contains("quite a bit"));
}

#[test]
fn cohort_summary_matches_section_iv() {
    let out = output_of("cohort");
    assert!(out.contains("n = 22"));
    assert!(out.contains("male 77%"));
    assert!(out.contains("Puerto Rico 1"));
}

#[test]
fn studies_emit_speedup_tables() {
    let a = output_of("moduleA-study");
    assert!(a.contains("numerical integration"));
    assert!(a.contains("drug design"));
    assert!(a.contains("Raspberry Pi 4B"));
    let b = output_of("moduleB-study");
    assert!(b.contains("forest fire"));
    assert!(b.contains("St. Olaf 64-core VM"));
    assert!(b.contains("Chameleon"));
}

#[test]
fn full_reproduce_run_covers_all_ids() {
    // What `reproduce` without arguments does.
    let ids: Vec<&str> = experiments::all().iter().map(|e| e.id).collect();
    assert_eq!(
        ids,
        vec![
            "table1",
            "fig1",
            "fig2",
            "cohort",
            "table2",
            "fig3",
            "fig4",
            "feedback",
            "injection",
            "economics",
            "moduleA-study",
            "moduleB-study",
            "moduleB-chaos"
        ]
    );
}
