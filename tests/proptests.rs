//! Property-based tests over the workspace's core invariants, spanning
//! crates: runtime scheduling/reduction laws, message-passing semantics,
//! the statistics stack, and the reconstruction solver.

use proptest::prelude::*;

use pdc_mpc::{ops, World};
use pdc_shmem::{parallel_for, parallel_reduce, Schedule, Team};
use pdc_stats::describe::{mean, round_to, variance};
use pdc_stats::dist::StudentT;
use pdc_stats::ttest::paired_t_test;

fn schedule_strategy() -> impl Strategy<Value = Schedule> {
    prop_oneof![
        Just(Schedule::Static { chunk: None }),
        (1usize..5).prop_map(|c| Schedule::Static { chunk: Some(c) }),
        (1usize..5).prop_map(|c| Schedule::Dynamic { chunk: c }),
        (1usize..5).prop_map(|m| Schedule::Guided { min_chunk: m }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_schedule_visits_every_index_exactly_once(
        schedule in schedule_strategy(),
        threads in 1usize..6,
        len in 0usize..200,
    ) {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let team = Team::new(threads);
        let counts: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(&team, 0..len, schedule, |i, _| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, c) in counts.iter().enumerate() {
            prop_assert_eq!(c.load(Ordering::Relaxed), 1, "index {}", i);
        }
    }

    #[test]
    fn parallel_reduce_equals_sequential_fold(
        schedule in schedule_strategy(),
        threads in 1usize..6,
        data in prop::collection::vec(0u64..1000, 0..120),
    ) {
        let team = Team::new(threads);
        let got = parallel_reduce(
            &team, 0..data.len(), schedule, 0u64, |i| data[i], |a, b| a + b);
        prop_assert_eq!(got, data.iter().sum::<u64>());
    }

    #[test]
    fn allreduce_sum_equals_rank_sum(np in 1usize..7) {
        let out = World::new(np).run(|c| c.allreduce(c.rank() as u64, ops::sum).unwrap());
        let want: u64 = (0..np as u64).sum();
        prop_assert!(out.iter().all(|&v| v == want));
    }

    #[test]
    fn gather_preserves_rank_order(np in 1usize..7, base in 0usize..100) {
        let out = World::new(np).run(|c| c.gather(0, c.rank() * 3 + base).unwrap());
        let want: Vec<usize> = (0..np).map(|r| r * 3 + base).collect();
        prop_assert_eq!(out[0].as_ref().unwrap(), &want);
    }

    #[test]
    fn ring_send_recv_never_loses_messages(np in 2usize..7, payload in any::<u32>()) {
        let out = World::new(np).run(|c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            c.send(next, 0, &(payload ^ c.rank() as u32)).unwrap();
            c.recv::<u32>(prev, 0).unwrap()
        });
        for (r, got) in out.iter().enumerate() {
            let prev = (r + np - 1) % np;
            prop_assert_eq!(*got, payload ^ prev as u32);
        }
    }

    #[test]
    fn mean_bounds_and_variance_nonneg(data in prop::collection::vec(-1e6f64..1e6, 1..60)) {
        let m = mean(&data).unwrap();
        let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-6 && m <= hi + 1e-6);
        prop_assert!(variance(&data).unwrap() >= -1e-9);
    }

    #[test]
    fn t_cdf_is_monotone_and_bounded(nu in 1.0f64..100.0, a in -20.0f64..20.0, b in -20.0f64..20.0) {
        let d = StudentT::new(nu).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(d.cdf(lo) <= d.cdf(hi) + 1e-12);
        prop_assert!((0.0..=1.0).contains(&d.cdf(a)));
    }

    #[test]
    fn paired_t_is_antisymmetric(
        pre in prop::collection::vec(1.0f64..5.0, 4..30),
    ) {
        // Construct a post with guaranteed non-degenerate differences.
        let post: Vec<f64> = pre.iter().enumerate()
            .map(|(i, &v)| (v + (i % 3) as f64 * 0.5 + 0.25).min(5.0))
            .collect();
        if let Ok(fwd) = paired_t_test(&pre, &post) {
            let rev = paired_t_test(&post, &pre).unwrap();
            prop_assert!((fwd.t + rev.t).abs() < 1e-10);
            prop_assert!((fwd.p_two_sided - rev.p_two_sided).abs() < 1e-12);
        }
    }

    #[test]
    fn reconstructed_mean_vectors_round_trip(total_pct in 100usize..500) {
        let target = round_to(total_pct as f64 / 100.0, 2);
        if let Some((v, n)) = pdc_assessment::reconstruct_mean_vector(target, 22) {
            prop_assert_eq!(v.len(), n);
            prop_assert_eq!(v.reported_mean(), target);
            prop_assert!(v.values().iter().all(|&x| (1..=5).contains(&x)));
        }
    }

    #[test]
    fn fire_damage_within_bounds(size in 1usize..25, seed in any::<u64>(), prob in 0.0f64..1.0) {
        let r = pdc_exemplars::forestfire::simulate_fire(size, prob, seed);
        prop_assert!(r.burned_pct > 0.0, "centre always burns");
        prop_assert!(r.burned_pct <= 100.0);
        prop_assert!(r.iterations >= 1);
        // Each iteration past the first requires at least one fresh
        // ignition, and every tree ignites at most once.
        prop_assert!(r.iterations <= size * size + 1);
    }

    #[test]
    fn lcs_score_is_symmetric_in_containment(lig in "[a-e]{1,6}", prot in "[a-e]{1,30}") {
        use pdc_exemplars::drugdesign::score;
        let s = score(&lig, &prot);
        prop_assert!(s <= lig.len().min(prot.len()));
        // Appending to the protein never lowers the score.
        let longer = format!("{prot}x");
        prop_assert!(score(&lig, &longer) >= s);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn parallel_scan_matches_sequential(
        data in prop::collection::vec(0u64..1000, 0..150),
        threads in 1usize..6,
    ) {
        use pdc_shmem::scan::parallel_inclusive_scan;
        let mut par = data.clone();
        parallel_inclusive_scan(&Team::new(threads), &mut par, |a, b| a + b);
        let mut acc = 0u64;
        let seq: Vec<u64> = data.iter().map(|&x| { acc += x; acc }).collect();
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn cart_coords_rank_bijection(a in 1usize..5, b in 1usize..5) {
        use pdc_mpc::CartComm;
        World::new(a * b).run(|comm| {
            let cart = CartComm::create(comm, &[a, b], &[false, true]).unwrap();
            for r in 0..a * b {
                let coords = cart.coords_of(r);
                assert_eq!(cart.rank_of(&coords).unwrap(), r);
            }
        });
    }

    #[test]
    fn dims_create_always_factors(n in 1usize..200, d in 1usize..4) {
        let dims = pdc_mpc::dims_create(n, d);
        prop_assert_eq!(dims.iter().product::<usize>(), n);
        prop_assert_eq!(dims.len(), d);
        // Balanced: sorted descending.
        for w in dims.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn bootstrap_ci_brackets_the_mean(
        data in prop::collection::vec(1.0f64..5.0, 5..40),
        seed in any::<u64>(),
    ) {
        let ci = pdc_stats::bootstrap_mean_ci(&data, 300, 0.05, seed).unwrap();
        let m = mean(&data).unwrap();
        // Percentile CIs from resampled means always bracket a value
        // within the data's range; the mean lies inside up to resampling
        // granularity.
        prop_assert!(ci.lo <= m + 1e-9 && m - 1e-9 <= ci.hi, "{:?} vs {}", ci, m);
    }

    #[test]
    fn wilcoxon_agrees_with_t_on_strong_shifts(
        base in prop::collection::vec(1.0f64..3.0, 12..25),
    ) {
        use pdc_stats::wilcoxon_signed_rank;
        // A uniform +1.5 shift with small deterministic jitter: both
        // tests must call it significant.
        let post: Vec<f64> = base
            .iter()
            .enumerate()
            .map(|(i, &v)| v + 1.5 + 0.1 * ((i % 3) as f64))
            .collect();
        let t = paired_t_test(&base, &post).unwrap();
        let w = wilcoxon_signed_rank(&base, &post).unwrap();
        prop_assert!(t.p_two_sided < 0.01);
        prop_assert!(w.p_two_sided < 0.01);
    }

    #[test]
    fn parsons_rejects_every_nontrivial_permutation(swap_a in 0usize..5, swap_b in 0usize..5) {
        use pdc_courseware::Parsons;
        let p = Parsons::spmd_problem();
        let mut ans = p.solution.clone();
        ans.swap(swap_a, swap_b);
        let g = p.grade(&ans);
        prop_assert_eq!(g.correct, swap_a == swap_b, "{}", g.feedback);
    }

    #[test]
    fn heat_mpc_matches_seq_for_any_rank_count(np in 1usize..6, cells in 1usize..30) {
        use pdc_exemplars::heat::{run_mpc, run_seq, HeatConfig};
        let config = HeatConfig {
            cells,
            steps: 25,
            ..Default::default()
        };
        prop_assert_eq!(run_mpc(&config, np), run_seq(&config));
    }

    #[test]
    fn pandemic_counts_conserve_population(agents in 10usize..60, seed in any::<u64>()) {
        use pdc_exemplars::pandemic::{run_seq, PandemicConfig};
        let config = PandemicConfig {
            agents,
            days: 12,
            seed,
            ..Default::default()
        };
        for day in run_seq(&config) {
            prop_assert_eq!(day.s + day.i + day.r, agents);
        }
    }
}
