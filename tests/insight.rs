//! Integration: the `pdc-insight` analytics pipeline end to end —
//! histograms merged across processes, critical-path extraction on a
//! hand-built 3-rank trace with a known longest path, the
//! `pdc-insight diff` regression gate, and the deterministic
//! `reproduce --insight` artifact.

use pdc_analyze::traceio::parse_jsonl;
use pdc_insight::{critical_path, diff_reports, HistogramSet, InsightReport, Thresholds};
use pdc_trace::Histogram;

/// Serialize one aggregated histogram line the way `hist_jsonl` does,
/// stamped with the emitting process's pid.
fn hist_line(cat: &str, name: &str, pid: u64, h: &Histogram) -> String {
    format!(
        "{{\"kind\":\"hist\",\"cat\":\"{cat}\",\"name\":\"{name}\",\"pid\":{pid},{}\n",
        &h.to_json()[1..]
    )
}

#[test]
fn histograms_merge_across_processes() {
    // Three "rank processes" each record a third of the samples into
    // their own local histogram; a fourth reference histogram sees all
    // of them in one pass.
    let mut reference = Histogram::new();
    let mut jsonl = String::new();
    for rank in 0..3u64 {
        let mut local = Histogram::new();
        for i in 0..200u64 {
            // Deterministic spread over ~3 decades, different per rank.
            let v = 1_000 + (rank * 200 + i) * (rank * 977 + 313);
            local.record(v);
            reference.record(v);
        }
        jsonl.push_str(&hist_line("net", "frame_rtt", 4000 + rank, &local));
    }

    let set = HistogramSet::from_lines(&parse_jsonl(&jsonl));
    let merged = set.get("net", "frame_rtt").expect("folded histogram");

    assert_eq!(merged.count(), 600);
    assert_eq!(merged.count(), reference.count());
    // Bucketed merge is exact at bucket granularity: every quantile of
    // the fold equals the quantile of single-pass recording, and the
    // extremes match a reference round-tripped through the same sparse
    // bucket serialization (exact min/max collapse to bucket bounds).
    assert_eq!(merged.quantiles(), reference.quantiles());
    let round_tripped = Histogram::from_buckets(&reference.nonzero_buckets());
    assert_eq!(merged.min(), round_tripped.min());
    assert_eq!(merged.max(), round_tripped.max());
}

#[test]
fn histogram_set_keeps_metrics_separate_while_folding_pids() {
    let mut a = Histogram::new();
    a.record(10);
    let mut b = Histogram::new();
    b.record(1_000_000);
    let jsonl = [
        hist_line("net", "heartbeat_gap", 1, &a),
        hist_line("net", "heartbeat_gap", 2, &a),
        hist_line("net", "frame_rtt", 1, &b),
    ]
    .concat();

    let set = HistogramSet::from_lines(&parse_jsonl(&jsonl));
    assert_eq!(set.len(), 2);
    assert_eq!(set.get("net", "heartbeat_gap").unwrap().count(), 2);
    assert_eq!(set.get("net", "frame_rtt").unwrap().count(), 1);
}

/// A hand-built 3-rank (3-process) trace with one known longest path.
///
/// Timeline (ns), one lane per pid, tids all 1:
///
/// ```text
/// rank0 (pid 100): setup[0,20)  recv[20,95)              reduce[95,110)
/// rank1 (pid 200): work [0,40)  send->0 [40,50)
/// rank2 (pid 300): work [0,80)  send->0 [80,90)
/// ```
///
/// rank0's recv of rank2's result returns at 95; the longest chain is
/// rank2 work (80 compute) -> rank2 send (10 wire) -> the tail of
/// rank0's recv [90,95) (5 wire) -> reduce (15 compute), for
/// 95 compute + 15 wire = 110 ns with zero idle.
fn three_rank_jsonl() -> String {
    let mut s = String::new();
    let span = |s: &mut String, pid: u64, name: &str, ts: u64, dur: u64| {
        s.push_str(&format!(
            "{{\"kind\":\"span\",\"cat\":\"app\",\"name\":\"{name}\",\"ts_ns\":{ts},\"tid\":1,\"pid\":{pid},\"dur_ns\":{dur}}}\n"
        ));
    };
    let msg = |s: &mut String, pid: u64, name: &str, ts: u64, dur: u64, src: u64, dst: u64| {
        s.push_str(&format!(
            "{{\"kind\":\"span\",\"cat\":\"mpc\",\"name\":\"{name}\",\"ts_ns\":{ts},\"tid\":1,\"pid\":{pid},\"dur_ns\":{dur},\"args\":{{\"src\":{src},\"dst\":{dst},\"tag\":7}}}}\n"
        ));
    };
    span(&mut s, 100, "setup", 0, 20);
    msg(&mut s, 100, "recv", 20, 75, 2, 0); // matches rank2's send
    span(&mut s, 100, "reduce", 95, 15);
    span(&mut s, 200, "work", 0, 40);
    msg(&mut s, 200, "send", 40, 10, 1, 0);
    span(&mut s, 300, "work", 0, 80);
    msg(&mut s, 300, "send", 80, 10, 2, 0);
    s
}

#[test]
fn critical_path_follows_the_slowest_rank_across_the_wire() {
    let lines = parse_jsonl(&three_rank_jsonl());
    let cp = critical_path(&lines).expect("path");

    assert_eq!(cp.wall_ns, 110);
    assert_eq!(cp.breakdown.compute_ns, 95);
    assert_eq!(cp.breakdown.wire_ns, 15);
    assert_eq!(cp.breakdown.idle_ns, 0);
    assert_eq!(cp.breakdown.total_ns(), cp.wall_ns);

    // The path must visit rank0 and rank2 but never rank1: rank1's
    // send was not the last arrival rank0 waited on.
    let pids: Vec<Option<u64>> = cp.steps.iter().map(|s| cp.lanes[s.lane].pid).collect();
    assert!(pids.contains(&Some(100)));
    assert!(pids.contains(&Some(300)));
    assert!(!pids.contains(&Some(200)));

    // Walking backward, the jump off rank0's recv lands inside rank2's
    // send — the happens-before edge crosses processes.
    let first_wire = cp
        .steps
        .iter()
        .find(|s| s.name == "send")
        .expect("send step on the path");
    assert_eq!(cp.lanes[first_wire.lane].pid, Some(300));
}

#[test]
fn faster_remote_work_moves_the_critical_path() {
    // When the remote rank finishes well before the recv even starts,
    // the happens-before edge is not binding: the recv's own duration
    // is the cost, and the path never leaves rank0.
    let jsonl = r#"
{"kind":"span","cat":"app","name":"setup","ts_ns":0,"tid":1,"pid":100,"dur_ns":20}
{"kind":"span","cat":"mpc","name":"recv","ts_ns":20,"tid":1,"pid":100,"dur_ns":5,"args":{"src":2,"dst":0,"tag":7}}
{"kind":"span","cat":"app","name":"reduce","ts_ns":25,"tid":1,"pid":100,"dur_ns":15}
{"kind":"span","cat":"app","name":"work","ts_ns":0,"tid":1,"pid":300,"dur_ns":8}
{"kind":"span","cat":"mpc","name":"send","ts_ns":8,"tid":1,"pid":300,"dur_ns":2,"args":{"src":2,"dst":0,"tag":7}}
"#;
    let cp = critical_path(&parse_jsonl(jsonl)).expect("path");
    assert_eq!(cp.wall_ns, 40);
    // The recv is no longer the bottleneck's tail: the whole recv span
    // counts as wire on rank0's own lane, and rank2 never appears.
    assert!(cp.steps.iter().all(|s| cp.lanes[s.lane].pid == Some(100)));
    assert_eq!(cp.breakdown.compute_ns, 35);
    assert_eq!(cp.breakdown.wire_ns, 5);
}

#[test]
fn diff_gate_accepts_identical_reports() {
    let report = pdc_core::insight::insight_report();
    let d = diff_reports(&report, &report, Thresholds::default());
    assert!(d.ok(), "identical artifacts must pass: {}", d.render());
    assert_eq!(d.compared.len(), report.studies.len());
    assert!(d.regressions.is_empty());
}

#[test]
fn diff_gate_rejects_a_twenty_percent_wall_regression() {
    let base = pdc_core::insight::insight_report();
    let mut cand = base.clone();
    // Inflate one study's critical path by 20%, attributed to compute,
    // keeping the attribution invariant total == wall intact.
    let s = &mut cand.studies[0];
    let extra = s.path.wall_ns / 5;
    s.path.wall_ns += extra;
    s.path.compute_ns += extra;

    let d = diff_reports(&base, &cand, Thresholds::default());
    assert!(!d.ok(), "a 20% wall regression must fail the gate");
    assert!(d.regressions.iter().any(|r| r.metric.contains("wall")));

    // The same inflation in the *baseline* direction is an improvement
    // and must never flag.
    let d = diff_reports(&cand, &base, Thresholds::default());
    assert!(d.ok(), "improvements must pass: {}", d.render());
}

#[test]
fn diff_gate_rejects_a_missing_study() {
    let base = pdc_core::insight::insight_report();
    let mut cand = base.clone();
    cand.studies.pop();
    let d = diff_reports(&base, &cand, Thresholds::default());
    assert!(!d.ok(), "dropping a study must fail the gate");
}

#[test]
fn insight_artifact_is_deterministic_and_round_trips() {
    let a = pdc_core::insight::insight_report();
    let b = pdc_core::insight::insight_report();
    assert_eq!(a.to_json(), b.to_json(), "artifact must be byte-identical");
    assert!(a.passed());

    let back = InsightReport::from_json(&a.to_json()).expect("parse own artifact");
    assert_eq!(back.to_json(), a.to_json());
    assert_eq!(back.studies.len(), 3, "module A, module B, net");
}

#[test]
fn insight_artifact_matches_the_committed_baseline() {
    // tests/golden/BENCH_insight.json is the perf baseline CI diffs
    // against; the virtual-time replay must regenerate it byte for
    // byte. An intentional model change regenerates it with:
    //
    //   cargo run -p pdc-bench --bin reproduce -- --insight && \
    //     cp artifacts/BENCH_insight.json tests/golden/BENCH_insight.json
    let path = format!(
        "{}/tests/golden/BENCH_insight.json",
        env!("CARGO_MANIFEST_DIR")
    );
    let want = std::fs::read_to_string(&path).expect("committed baseline");
    let got = pdc_core::insight::insight_report().to_json();
    assert_eq!(got, want, "BENCH_insight.json drifted from the baseline");
}

#[test]
fn measured_module_a_trace_yields_a_full_attribution() {
    // Run the real Module A study under tracing on this host — plus an
    // explicit barriered team region, so the barrier-wait histogram is
    // guaranteed to fire — and push the resulting export through the
    // same parse -> DAG pipeline the dashboard uses: attribution must
    // cover the wall clock with no unexplained time, whatever this
    // machine's timings are.
    let (_report, events) = pdc_trace::with_tracing(|| {
        let team = pdc_shmem::Team::new(3);
        team.parallel(|ctx| {
            std::thread::sleep(std::time::Duration::from_micros(
                50 * (ctx.thread_num() as u64 + 1),
            ));
            ctx.barrier();
        });
        pdc_core::study::module_a_study(pdc_core::study::Scale::Quick)
    });
    let mut jsonl = pdc_trace::export::jsonl(&events);
    jsonl.push_str(&pdc_trace::export::hist_jsonl(
        &pdc_trace::drain_histograms(),
    ));

    let lines = parse_jsonl(&jsonl);
    let cp = critical_path(&lines).expect("traced study has a path");
    assert!(cp.wall_ns > 0);
    assert_eq!(cp.breakdown.total_ns(), cp.wall_ns);

    // The shared-memory barrier instrumentation must surface as a
    // foldable percentile histogram.
    let set = HistogramSet::from_lines(&lines);
    let barrier = set.get("shmem", "barrier_wait").expect("barrier histogram");
    assert!(barrier.count() > 0);
    let (p50, p90, p99) = barrier.quantiles();
    assert!(p50 <= p90 && p90 <= p99);
}
