//! Golden-snapshot tests: the deterministic experiment artifacts must
//! render byte-for-byte as recorded in `tests/golden/`. Any intentional
//! change to a rendering regenerates the snapshot with:
//!
//! ```text
//! cargo run -p pdc-bench --bin reproduce -- <id> > tests/golden/<id>.txt
//! ```
//!
//! (fig2 and the studies are excluded: mpirun output interleaving and
//! wall-clock timings are nondeterministic by design.)

use pdc_core::experiments;

fn check(id: &str) {
    let got = experiments::run(id).unwrap_or_else(|| panic!("unknown experiment {id}"));
    let path = format!("{}/tests/golden/{id}.txt", env!("CARGO_MANIFEST_DIR"));
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {path}: {e}"));
    // `reproduce` prints with a trailing newline via println!.
    let got_full = format!("{got}\n");
    assert_eq!(
        got_full, want,
        "experiment '{id}' drifted from its golden snapshot; regenerate \
         tests/golden/{id}.txt if the change is intentional"
    );
}

#[test]
fn table1_matches_snapshot() {
    check("table1");
}

#[test]
fn fig1_matches_snapshot() {
    check("fig1");
}

#[test]
fn table2_matches_snapshot() {
    check("table2");
}

#[test]
fn cohort_matches_snapshot() {
    check("cohort");
}

#[test]
fn fig3_matches_snapshot() {
    check("fig3");
}

#[test]
fn fig4_matches_snapshot() {
    check("fig4");
}

#[test]
fn injection_matches_snapshot() {
    check("injection");
}

#[test]
fn economics_matches_snapshot() {
    check("economics");
}
