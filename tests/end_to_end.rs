//! End-to-end integration tests: the two modules from kit to report,
//! crossing every crate boundary in the workspace.

use pdc_core::study::{module_a_study, module_b_study, Scale};
use pdc_core::{module_a, module_b, Workshop};
use pdc_courseware::module::Block;
use pdc_courseware::notebook::Cell;
use pdc_courseware::Gradebook;
use pdc_patternlets::registry;
use pdc_pikit::{Device, PiModel, Playbook};

#[test]
fn module_a_full_learner_journey() {
    // 1. Kit arrives; learner provisions it via the chapter-1 steps.
    let mut pi = Device::kit_pi4();
    let report = Playbook::kit_setup().run(&mut pi);
    assert!(report.success());
    assert!(pi.ready_for_module_a());
    assert_eq!(pi.model.cores(), 4, "the Pi the study assumes");

    // 2. The learner opens the handout and works the Figure-1 section.
    let module = module_a::module();
    let mut gradebook = Gradebook::new();
    let section = module.section("2.3").unwrap();
    let activity = section
        .blocks
        .iter()
        .find_map(|b| match b {
            Block::Activity(a) => Some(a),
            _ => None,
        })
        .unwrap();
    assert!(gradebook.attempt_mc("learner", activity, 2).correct);

    // 3. The hands-on hour: every linked patternlet runs on "the Pi's"
    //    4 threads and produces output.
    for id in module.patternlet_ids() {
        let out = registry::find(id).unwrap().run(pi.model.cores());
        assert!(!out.lines.is_empty(), "{id}");
    }

    // 4. The closing benchmarking study produces the Pi-vs-Colab shapes.
    let studies = module_a_study(Scale::Quick);
    for s in &studies {
        let pi4 = s.predicted_at("Raspberry Pi 4B", 4).unwrap();
        let colab4 = s.predicted_at("Google Colab VM", 4).unwrap();
        assert!(
            pi4 > 2.5 && colab4 <= 1.01,
            "{}: {pi4} vs {colab4}",
            s.exemplar
        );
    }
}

#[test]
fn module_b_full_learner_journey() {
    // Hour 1: the whole Colab notebook executes; the SPMD cell produces
    // the Figure-2 output on the Colab container hostname.
    let nb = module_b::executed_notebook();
    let mut mpirun_cells = 0;
    for cell in &nb.cells {
        if let Cell::Code { source, outputs } = cell {
            if source.starts_with("!mpirun") {
                mpirun_cells += 1;
                assert!(!outputs.is_empty());
            }
        }
    }
    assert_eq!(
        mpirun_cells, 11,
        "eleven patternlet programs in the notebook"
    );
    let fig2 = module_b::render_figure2();
    assert!(fig2.contains("Greetings from process 0 of 4 on d6ff4f902ed6"));

    // Hour 2: scalability study shows Colab flat, the big platforms not.
    let studies = module_b_study(Scale::Quick);
    for s in &studies {
        let colab = s.predicted_at("Google Colab VM", 16).unwrap();
        let stolaf = s.predicted_at("St. Olaf 64-core VM", 16).unwrap();
        let cham = s.predicted_at("Chameleon cluster (4×24)", 16).unwrap();
        assert!(colab <= 1.01, "{}", s.exemplar);
        assert!(stolaf > 4.0, "{}: {stolaf}", s.exemplar);
        assert!(cham > 2.0, "{}: {cham}", s.exemplar);
    }
}

#[test]
fn unsupported_pi_blocks_the_module() {
    // A learner with an old Pi 2 can't boot the csip image — the failure
    // mode the setup videos warn about.
    let mut old = Device::new(PiModel::Pi2);
    old.sd = Some(pdc_pikit::device::SdCard {
        capacity_gb: 16,
        flashed: None,
    });
    let report = Playbook::kit_setup().run(&mut old);
    assert!(!report.success());
    assert!(!old.ready_for_module_a());
}

#[test]
fn workshop_report_assembles_everything() {
    let w = Workshop::july_2020();
    let report = w.render_report();
    // One string containing the cohort, Table II, and both figures.
    for needle in ["n = 22", "4.55", "2.82", "3.77", "paired t-test"] {
        assert!(report.contains(needle), "missing {needle}");
    }
    // And the t-tests recompute to the published order of magnitude.
    assert!(w.figure3().t_test().p_two_sided < 0.005);
    assert!(w.figure4().t_test().p_two_sided < 1e-5);
}

#[test]
fn both_paradigm_catalogs_run_at_workshop_size() {
    // The workshop ran everything at np/threads = 4.
    for p in registry::all() {
        let out = p.run(4);
        assert!(!out.lines.is_empty(), "{}", p.id);
    }
}
