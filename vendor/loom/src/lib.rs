//! Offline stand-in for `loom` 0.7.
//!
//! Upstream loom explores *every* interleaving of a concurrent closure
//! by running it under a cooperative scheduler with model-checked
//! atomics. This build environment has no network, so this stand-in
//! keeps loom's API surface (`model`, `loom::thread`, `loom::sync`,
//! `loom::hint`) but implements [`model`] as bounded randomized stress:
//! the closure runs many times on real OS threads, with the iteration
//! count inflated so the scheduler gets many chances to produce a bad
//! interleaving. That is strictly weaker than exhaustive exploration —
//! a model check passing here raises confidence, it does not prove the
//! absence of a race — and the honest framing matters for a teaching
//! workspace: the loom tests read like model checks and upgrade to real
//! ones the moment the genuine crate is available, because the API is
//! unchanged.
//!
//! Only the surface the workspace's model tests use is provided:
//! `loom::model`, `loom::thread::{spawn, yield_now}`, `loom::sync::Arc`,
//! `loom::sync::atomic::*`, and `loom::hint::spin_loop`.

/// How many times [`model`] replays the closure. Upstream loom bounds
/// the number of *distinct interleavings*; the stress stand-in bounds
/// replays instead. Overridable via `LOOM_MAX_PREEMPTIONS`' moral
/// equivalent, `LOOM_STRESS_ITERS`.
const DEFAULT_ITERS: usize = 400;

/// Run `f` repeatedly, giving the OS scheduler many chances to produce
/// an unfortunate interleaving. Panics (assertion failures inside `f`)
/// propagate, failing the enclosing test — same contract as upstream
/// `loom::model`, minus the exhaustiveness.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let iters = std::env::var("LOOM_STRESS_ITERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(DEFAULT_ITERS);
    for i in 0..iters {
        // Vary pre-run jitter so consecutive replays don't phase-lock
        // into the same lucky schedule.
        for _ in 0..(i % 7) {
            std::thread::yield_now();
        }
        f();
    }
}

/// Thread handling. Real threads here; loom's virtual threads upstream.
pub mod thread {
    pub use std::thread::{current, park, sleep, spawn, yield_now, JoinHandle, Thread};
}

/// Synchronization primitives (std's, not model-checked ones).
pub mod sync {
    pub use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};

    pub mod atomic {
        pub use std::sync::atomic::{
            fence, AtomicBool, AtomicI64, AtomicIsize, AtomicU32, AtomicU64, AtomicUsize, Ordering,
        };
    }
}

/// Spin-loop hint passthrough.
pub mod hint {
    pub use std::hint::spin_loop;
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::Arc;

    #[test]
    fn model_replays_the_closure() {
        std::env::set_var("LOOM_STRESS_ITERS", "16");
        let runs = Arc::new(AtomicUsize::new(0));
        let r = runs.clone();
        super::model(move || {
            r.fetch_add(1, Ordering::SeqCst);
        });
        std::env::remove_var("LOOM_STRESS_ITERS");
        assert_eq!(runs.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn threads_join_inside_model() {
        super::model(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = n.clone();
                    super::thread::spawn(move || {
                        n.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(n.load(Ordering::SeqCst), 2);
        });
    }
}
