//! Offline stand-in for `serde_derive`.
//!
//! The workspace vendors a value-based `serde` facade (see
//! `vendor/serde`): `Serialize` lowers a type to `serde::Value` and
//! `Deserialize` lifts it back. This proc-macro derives both for the
//! shapes the workspace actually uses — named/tuple/unit structs and
//! enums with unit, newtype, tuple, and struct variants — by parsing the
//! item's token stream directly (no `syn`/`quote`, which are not
//! available offline).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

/// The shapes we can derive for.
enum Shape {
    UnitStruct,
    /// Tuple struct with `n` fields (n == 1 is serde's newtype case).
    TupleStruct(usize),
    /// Struct with named fields, in declaration order.
    NamedStruct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let (name, shape) = match parse_item(input) {
        Ok(v) => v,
        Err(msg) => {
            return format!("compile_error!({msg:?});").parse().unwrap();
        }
    };
    let body = match mode {
        Mode::Serialize => gen_serialize(&name, &shape),
        Mode::Deserialize => gen_deserialize(&name, &shape),
    };
    body.parse().unwrap()
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip attributes and visibility before the `struct`/`enum` keyword.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" || id.to_string() == "enum" => id.to_string(),
        other => return Err(format!("derive: expected struct/enum, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("derive: expected item name, got {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "derive: generic type `{name}` is not supported by the vendored serde_derive"
            ));
        }
    }
    let shape = if kind == "struct" {
        match tokens.get(i) {
            None => Shape::UnitStruct,
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            other => return Err(format!("derive: unexpected struct body {other:?}")),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("derive: unexpected enum body {other:?}")),
        }
    };
    Ok((name, shape))
}

/// Parse `field: Type, ...` (with optional attributes/visibility),
/// returning the field names in declaration order.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes and visibility.
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("derive: expected `:` after field, got {other:?}")),
        }
        // Skip the type: advance to the next top-level `,` (angle-depth 0).
        let mut angle: i64 = 0;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(fields)
}

/// Count comma-separated fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut angle: i64 = 0;
    let mut count = 1;
    let mut trailing_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                trailing_comma = true;
                continue;
            }
            _ => {}
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes (e.g. doc comments, #[default]).
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '#' {
                i += 2;
            } else {
                break;
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantFields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantFields::Named(parse_named_fields(g.stream())?)
            }
            _ => VariantFields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the next comma.
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '=' {
                while i < tokens.len() {
                    if let TokenTree::Punct(p) = &tokens[i] {
                        if p.as_char() == ',' {
                            break;
                        }
                    }
                    i += 1;
                }
            }
        }
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::TupleStruct(1) => "::serde::Serialize::to_json_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_json_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Shape::NamedStruct(fields) => {
            let mut s = String::from("{ let mut __m = ::serde::Map::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "__m.insert({f:?}.to_string(), ::serde::Serialize::to_json_value(&self.{f}));\n"
                ));
            }
            s.push_str("::serde::Value::Object(__m) }");
            s
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    VariantFields::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vn} => ::serde::Value::String({vn:?}.to_string()),\n"
                        ));
                    }
                    VariantFields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_json_value(__f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_json_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => {{ let mut __m = ::serde::Map::new(); \
                             __m.insert({vn:?}.to_string(), {inner}); \
                             ::serde::Value::Object(__m) }},\n",
                            binds.join(", ")
                        ));
                    }
                    VariantFields::Named(fields) => {
                        let binds = fields.join(", ");
                        let mut inner =
                            String::from("{ let mut __fm = ::serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "__fm.insert({f:?}.to_string(), ::serde::Serialize::to_json_value({f}));\n"
                            ));
                        }
                        inner.push_str("::serde::Value::Object(__fm) }");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{ let mut __m = ::serde::Map::new(); \
                             __m.insert({vn:?}.to_string(), {inner}); \
                             ::serde::Value::Object(__m) }},\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}\n}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_json_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}\n"
    )
}

// ---------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::UnitStruct => format!(
            "match __v {{ ::serde::Value::Null => Ok({name}), \
             _ => Err(::serde::Error::custom(format!(\"expected null for unit struct {name}\"))) }}"
        ),
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_json_value(__v)?))")
        }
        Shape::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_json_value(&__a[{k}])?"))
                .collect();
            format!(
                "{{ let __a = __v.as_array().ok_or_else(|| ::serde::Error::custom(\
                 format!(\"expected array for {name}\")))?;\n\
                 if __a.len() != {n} {{ return Err(::serde::Error::custom(\
                 format!(\"expected {n} elements for {name}, got {{}}\", __a.len()))); }}\n\
                 Ok({name}({})) }}",
                elems.join(", ")
            )
        }
        Shape::NamedStruct(fields) => {
            let mut s = format!(
                "{{ let __m = __v.as_object().ok_or_else(|| ::serde::Error::custom(\
                 format!(\"expected object for {name}\")))?;\n"
            );
            for f in fields {
                s.push_str(&format!(
                    "let {f} = ::serde::Deserialize::from_json_value(\
                     __m.get({f:?}).unwrap_or(&::serde::Value::Null))\
                     .map_err(|e| ::serde::Error::custom(format!(\"{name}.{f}: {{e}}\")))?;\n"
                ));
            }
            s.push_str(&format!("Ok({name} {{ {} }}) }}", fields.join(", ")));
            s
        }
        Shape::Enum(variants) => {
            // Externally tagged: "Variant" for unit; {"Variant": payload}
            // for data-carrying variants.
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    VariantFields::Unit => {
                        unit_arms.push_str(&format!("{vn:?} => return Ok({name}::{vn}),\n"));
                    }
                    VariantFields::Tuple(1) => {
                        data_arms.push_str(&format!(
                            "{vn:?} => return Ok({name}::{vn}(\
                             ::serde::Deserialize::from_json_value(__payload)?)),\n"
                        ));
                    }
                    VariantFields::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_json_value(&__a[{k}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "{vn:?} => {{ let __a = __payload.as_array().ok_or_else(|| \
                             ::serde::Error::custom(\"expected array payload\".to_string()))?;\n\
                             if __a.len() != {n} {{ return Err(::serde::Error::custom(\
                             \"wrong tuple arity\".to_string())); }}\n\
                             return Ok({name}::{vn}({})); }},\n",
                            elems.join(", ")
                        ));
                    }
                    VariantFields::Named(fields) => {
                        let mut inner = String::from(
                            "{ let __fm = __payload.as_object().ok_or_else(|| \
                             ::serde::Error::custom(\"expected object payload\".to_string()))?;\n",
                        );
                        for f in fields {
                            inner.push_str(&format!(
                                "let {f} = ::serde::Deserialize::from_json_value(\
                                 __fm.get({f:?}).unwrap_or(&::serde::Value::Null))?;\n"
                            ));
                        }
                        inner.push_str(&format!(
                            "return Ok({name}::{vn} {{ {} }}); }}",
                            fields.join(", ")
                        ));
                        data_arms.push_str(&format!("{vn:?} => {inner},\n"));
                    }
                }
            }
            format!(
                "{{ if let ::serde::Value::String(__s) = __v {{\n\
                     match __s.as_str() {{\n{unit_arms}\
                     _ => return Err(::serde::Error::custom(format!(\
                        \"unknown {name} variant {{__s}}\"))), }}\n\
                 }}\n\
                 if let Some(__m) = __v.as_object() {{\n\
                    if __m.len() == 1 {{\n\
                        let (__tag, __payload) = __m.iter().next().expect(\"len 1\");\n\
                        match __tag.as_str() {{\n{data_arms}\
                        _ => return Err(::serde::Error::custom(format!(\
                            \"unknown {name} variant {{__tag}}\"))), }}\n\
                    }}\n\
                 }}\n\
                 Err(::serde::Error::custom(format!(\"cannot deserialize {name}\"))) }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_json_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}\n"
    )
}
