//! Offline stand-in for `bytes`: an immutable, cheaply cloneable byte
//! buffer backed by `Arc<[u8]>`. Covers the construction/accessor
//! surface the workspace uses; zero-copy slicing is not needed here.

use std::ops::Deref;
use std::sync::Arc;

#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(Vec::new()),
        }
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn as_ref(&self) -> &[u8] {
        &self.data
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl From<&str> for Bytes {
    fn from(data: &str) -> Self {
        Bytes::copy_from_slice(data.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(data: String) -> Self {
        Bytes::from(data.into_bytes())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl std::iter::FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::copy_from_slice(&[9]).to_vec(), vec![9]);
    }
}
