//! Offline stand-in for `rand` 0.8.
//!
//! Implements the small surface the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen`/`gen_range`/`gen_bool` — on a
//! xoshiro256** generator seeded via splitmix64. Statistical quality is
//! ample for simulations and property tests; the exact stream differs
//! from upstream rand, which only matters to code asserting literal
//! sequences (none in this workspace).

use std::ops::{Range, RangeInclusive};

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable from the full type range via [`Rng::gen`].
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
int_sample_range!(usize, u64, u32, u16, u8);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
signed_sample_range!(isize, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let frac = f64::sample_standard(rng);
        self.start + frac * (self.end - self.start)
    }
}

pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256** seeded via splitmix64 — the stand-in for rand's
    /// `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(2usize..=9);
            assert!((2..=9).contains(&v));
            let w = rng.gen_range(0usize..5);
            assert!(w < 5);
        }
    }
}
