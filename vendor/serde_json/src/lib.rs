//! Offline stand-in for `serde_json`, layered on the vendored value-based
//! `serde` facade: [`Value`] is re-exported from there, this crate adds
//! the text codec (`to_string`, `from_str`, …) and the `json!` macro.

pub use serde::{Error, Map, Value};

use serde::de::DeserializeOwned;
use serde::Serialize;

pub type Result<T> = std::result::Result<T, Error>;

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_json_value()
}

/// Lift a [`Value`] tree back into a concrete type.
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T> {
    T::from_json_value(&value)
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_json_value().to_json_string())
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_json_value().to_json_string_pretty())
}

pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T> {
    let value = parse(s)?;
    T::from_json_value(&value)
}

pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::custom(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------------
// Parser — recursive descent over chars
// ---------------------------------------------------------------------

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    pos: usize,
}

fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        chars: s.chars().peekable(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.chars.peek().is_some() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

impl Parser<'_> {
    fn next(&mut self) -> Option<char> {
        let c = self.chars.next();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.next();
        }
    }

    fn expect(&mut self, want: char) -> Result<()> {
        match self.next() {
            Some(c) if c == want => Ok(()),
            other => Err(Error::custom(format!(
                "expected {want:?} at offset {}, got {other:?}",
                self.pos
            ))),
        }
    }

    fn keyword(&mut self, rest: &str, value: Value) -> Result<Value> {
        for want in rest.chars() {
            self.expect(want)?;
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.chars.peek() {
            Some('n') => {
                self.next();
                self.keyword("ull", Value::Null)
            }
            Some('t') => {
                self.next();
                self.keyword("rue", Value::Bool(true))
            }
            Some('f') => {
                self.next();
                self.keyword("alse", Value::Bool(false))
            }
            Some('"') => self.string().map(Value::String),
            Some('[') => self.array(),
            Some('{') => self.object(),
            Some(c) if *c == '-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::custom(format!(
                "unexpected {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.chars.peek() == Some(&']') {
            self.next();
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.next() {
                Some(',') => continue,
                Some(']') => return Ok(Value::Array(items)),
                other => {
                    return Err(Error::custom(format!(
                        "expected ',' or ']' at offset {}, got {other:?}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect('{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.chars.peek() == Some(&'}') {
            self.next();
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.next() {
                Some(',') => continue,
                Some('}') => return Ok(Value::Object(map)),
                other => {
                    return Err(Error::custom(format!(
                        "expected ',' or '}}' at offset {}, got {other:?}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err(Error::custom("unterminated string")),
                Some('"') => return Ok(out),
                Some('\\') => match self.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{08}'),
                    Some('f') => out.push('\u{0c}'),
                    Some('u') => {
                        let hi = self.hex4()?;
                        let code = if (0xd800..0xdc00).contains(&hi) {
                            // Surrogate pair: expect a \uXXXX low half.
                            self.expect('\\')?;
                            self.expect('u')?;
                            let lo = self.hex4()?;
                            0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::custom("invalid \\u escape"))?,
                        );
                    }
                    other => {
                        return Err(Error::custom(format!("invalid escape {other:?}")));
                    }
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let mut code = 0u32;
        for _ in 0..4 {
            let c = self
                .next()
                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
            let digit = c
                .to_digit(16)
                .ok_or_else(|| Error::custom(format!("invalid hex digit {c:?}")))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value> {
        let mut text = String::new();
        let mut is_float = false;
        if self.chars.peek() == Some(&'-') {
            text.push('-');
            self.next();
        }
        while let Some(&c) = self.chars.peek() {
            match c {
                '0'..='9' => text.push(c),
                '.' | 'e' | 'E' | '+' | '-' => {
                    is_float = true;
                    text.push(c);
                }
                _ => break,
            }
            self.next();
        }
        if !is_float {
            if let Some(rest) = text.strip_prefix('-') {
                if rest.parse::<u64>().is_ok() {
                    if let Ok(n) = text.parse::<i64>() {
                        return Ok(Value::I64(n));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(match i64::try_from(n) {
                    Ok(i) => Value::I64(i),
                    Err(_) => Value::U64(n),
                });
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number {text:?}")))
    }
}

// ---------------------------------------------------------------------
// json! macro — tt-muncher in the style of the real serde_json
// ---------------------------------------------------------------------

#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => {
        $crate::json_internal!($($tt)+)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ---- arrays ----
    (@array [$($elems:expr,)*]) => {
        vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        vec![$($elems),*]
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // ---- objects ----
    (@object $object:ident () () ()) => {};
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(::std::string::String::from($($key)+), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(::std::string::String::from($($key)+), $value);
    };
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    (@object $object:ident (($key:expr)) (: $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$key] (: $($rest)*) (: $($rest)*));
    };
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    // ---- values ----
    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ([]) => {
        $crate::Value::Array(::std::vec::Vec::new())
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::Value::Object($crate::Map::new())
    };
    ({ $($tt:tt)+ }) => {{
        let mut object = $crate::Map::new();
        $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
        $crate::Value::Object(object)
    }};
    ($other:expr) => {
        $crate::to_value(&$other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic_document() {
        let v = json!({
            "name": "pdc",
            "count": 3,
            "ratio": 0.5,
            "tags": ["a", "b"],
            "nested": { "ok": true, "none": null },
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
        assert_eq!(back["count"], 3);
        assert_eq!(back["name"], "pdc");
        assert!(back["nested"]["none"].is_null());
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = json!({ "cells": [{ "src": "x\n" }], "n": 4 });
        let back: Value = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn escapes_roundtrip() {
        let v = json!({ "s": "line\n\"quoted\"\ttab\\slash" });
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(v, back);
    }
}
