//! Offline stand-in for `parking_lot`, implemented over `std::sync`.
//!
//! Keeps parking_lot's ergonomics — non-poisoning locks, `lock()`
//! returning the guard directly, `Condvar::wait(&mut guard)` — while
//! delegating the actual synchronization to the std primitives. Poisoned
//! std locks are recovered via `into_inner()`, matching parking_lot's
//! "no poisoning" contract.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait can temporarily take the std guard
    // (std's wait consumes and returns it).
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        MutexGuard { inner: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Condvar")
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let taken = guard.inner.take().expect("guard present");
        let returned = self
            .inner
            .wait(taken)
            .unwrap_or_else(|p| p.into_inner());
        guard.inner = Some(returned);
    }

    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Instant,
    ) -> WaitTimeoutResult {
        let taken = guard.inner.take().expect("guard present");
        let remaining = timeout.saturating_duration_since(Instant::now());
        let (returned, result) = self
            .inner
            .wait_timeout(taken, remaining)
            .unwrap_or_else(|p| p.into_inner());
        guard.inner = Some(returned);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let taken = guard.inner.take().expect("guard present");
        let (returned, result) = self
            .inner
            .wait_timeout(taken, timeout)
            .unwrap_or_else(|p| p.into_inner());
        guard.inner = Some(returned);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = self
            .inner
            .read()
            .unwrap_or_else(|p| p.into_inner());
        RwLockReadGuard { inner }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = self
            .inner
            .write()
            .unwrap_or_else(|p| p.into_inner());
        RwLockWriteGuard { inner }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Minimal `Once` lookalike kept for API completeness.
pub struct Once {
    done: AtomicBool,
    lock: Mutex<()>,
}

impl Default for Once {
    fn default() -> Self {
        Self::new()
    }
}

impl Once {
    pub const fn new() -> Self {
        Once {
            done: AtomicBool::new(false),
            lock: Mutex::new(()),
        }
    }

    pub fn call_once<F: FnOnce()>(&self, f: F) {
        if self.done.load(Ordering::Acquire) {
            return;
        }
        let _guard = self.lock.lock();
        if !self.done.load(Ordering::Relaxed) {
            f();
            self.done.store(true, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_until(&mut g, Instant::now() + std::time::Duration::from_millis(10));
        assert!(r.timed_out());
    }
}
