//! Offline stand-in for `proptest`.
//!
//! Supports the workspace's property tests with the same syntax —
//! `proptest! { #![proptest_config(..)] #[test] fn f(x in strategy) {..} }`,
//! `prop_assert!`, `prop_oneof!`, `any::<T>()`, ranges-as-strategies,
//! `prop::collection::vec`, and simple `"[a-z]{m,n}"` regex string
//! strategies. Sampling is purely random (deterministic per test name and
//! case index) — there is no shrinking; a failing case reports its seed
//! instead.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// Object-safe sampling strategy: `sample` draws one value.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.source.sample(rng))
        }
    }

    /// Uniform choice between boxed alternatives — the engine behind
    /// `prop_oneof!`.
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.usize_below(self.options.len());
            self.options[idx].sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end - start) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*};
    }
    int_range_strategy!(usize, u64, u32, u16, u8);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        )*};
    }
    signed_range_strategy!(isize, i64, i32);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for ::std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.unit_f64() * (self.end() - self.start())
        }
    }

    /// String-literal strategies: a tiny regex subset of the form
    /// `[a-e]{1,6}` (character class plus repetition), or a literal
    /// string when no metacharacters are present.
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            sample_regex(self, rng)
        }
    }

    fn sample_regex(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // Parse one atom: a character class or a literal char.
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .expect("unclosed character class")
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        for c in lo..=hi {
                            set.push(char::from_u32(c).expect("valid range char"));
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            // Parse an optional {m,n} / {n} repetition.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unclosed repetition")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse::<usize>().expect("repetition bound"),
                        hi.trim().parse::<usize>().expect("repetition bound"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("repetition bound");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let count = if lo == hi {
                lo
            } else {
                lo + rng.usize_below(hi - lo + 1)
            };
            for _ in 0..count {
                out.push(alphabet[rng.usize_below(alphabet.len())]);
            }
        }
        out
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Full-range strategy for `any::<T>()`.
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_uint!(u8, u16, u32, u64, usize);

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite values only — keeps downstream arithmetic sane.
            let x = rng.unit_f64();
            (x - 0.5) * 2e9
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `prop::collection::vec(element_strategy, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty size range");
            let span = self.size.end - self.size.start;
            let len = self.size.start + rng.usize_below(span);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    use std::fmt;

    /// splitmix64 — deterministic, seeded per test case.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        pub fn usize_below(&mut self, n: usize) -> usize {
            assert!(n > 0);
            (self.next_u64() % n as u64) as usize
        }
    }

    /// Proptest's per-test configuration; only `cases` matters here.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError { msg: msg.into() }
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError { msg: msg.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }

    /// Stable seed derived from the test function's name, so each test
    /// explores its own deterministic stream.
    pub fn name_seed(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_each!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each!{ ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $config;
            let __base = $crate::test_runner::name_seed(stringify!($name));
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    __base ^ ((__case as u64).wrapping_mul(0x2545_f491_4f6c_dd1d)),
                );
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        { $body }
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__e) = __result {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        __case + 1,
                        __config.cases,
                        __e,
                        concat!($(stringify!($arg), " in ", stringify!($strat), "; "),*),
                    );
                }
            }
        }
        $crate::__proptest_each!{ ($config) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), __l, __r,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n  {}",
                    stringify!($left), stringify!($right), __l, __r, format!($($fmt)+),
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left), stringify!($right), __l,
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -5i64..5, z in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.0..1.0).contains(&z));
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(0u64..100, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn regex_strings_match_shape(s in "[a-e]{1,6}") {
            prop_assert!(!s.is_empty() && s.len() <= 6, "len {}", s.len());
            prop_assert!(s.chars().all(|c| ('a'..='e').contains(&c)));
        }

        #[test]
        fn oneof_and_map_compose(
            k in prop_oneof![Just(0usize), (1usize..4).prop_map(|v| v * 10)],
        ) {
            prop_assert!(k == 0 || (10..40).contains(&k));
        }
    }
}
