//! Offline stand-in for `serde`.
//!
//! The real serde could not be vendored (no network, no registry cache),
//! so this facade keeps the workspace compiling with the same surface
//! syntax — `#[derive(Serialize, Deserialize)]`, `use serde::{...}` —
//! over a much simpler value-based model: `Serialize` lowers a type to a
//! JSON-shaped [`Value`], `Deserialize` lifts it back. `serde_json` (also
//! vendored) handles text encoding of `Value`.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// JSON object representation. A sorted map keeps output deterministic.
pub type Map = BTreeMap<String, Value>;

/// A JSON-shaped dynamic value — the interchange type between
/// `Serialize`/`Deserialize` impls and the `serde_json` text layer.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(x) => Some(*x),
            Value::I64(n) => Some(*n as f64),
            Value::U64(n) => Some(*n as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

const NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

macro_rules! value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::I64(n) => i64::try_from(*other).map_or(false, |o| *n == o),
                    Value::U64(n) => u64::try_from(*other).map_or(false, |o| *n == o),
                    _ => false,
                }
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
value_eq_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json_string())
    }
}

// ---------------------------------------------------------------------
// JSON text encoding (used by the vendored serde_json)
// ---------------------------------------------------------------------

impl Value {
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        write_compact(self, &mut out);
        out
    }

    pub fn to_json_string_pretty(&self) -> String {
        let mut out = String::new();
        write_pretty(self, 0, &mut out);
        out
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(x: f64, out: &mut String) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        // Keep a `.0` so the value round-trips as a float, matching
        // serde_json's formatting of whole floats.
        out.push_str(&format!("{x:.1}"));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(*x, out),
        Value::String(s) => write_escaped(s, out),
        Value::Array(a) => {
            out.push('[');
            for (i, e) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(e, out);
            }
            out.push(']');
        }
        Value::Object(m) => {
            out.push('{');
            for (i, (k, e)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(e, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent + 1);
    let close_pad = "  ".repeat(indent);
    match v {
        Value::Array(a) if !a.is_empty() => {
            out.push_str("[\n");
            for (i, e) in a.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_pretty(e, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push(']');
        }
        Value::Object(m) if !m.is_empty() => {
            out.push_str("{\n");
            for (i, (k, e)) in m.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(e, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

// ---------------------------------------------------------------------
// Error
// ---------------------------------------------------------------------

/// Unified (de)serialization error for the vendored serde stack.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

// ---------------------------------------------------------------------
// Traits
// ---------------------------------------------------------------------

pub trait Serialize {
    fn to_json_value(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn from_json_value(v: &Value) -> Result<Self, Error>;
}

pub mod de {
    //! Mirror of `serde::de` for the one item the workspace imports.

    /// Owned-deserializable marker; in this value-based facade every
    /// `Deserialize` type qualifies.
    pub trait DeserializeOwned: super::Deserialize {}
    impl<T: super::Deserialize> DeserializeOwned for T {}

    pub use super::Error;
}

pub mod ser {
    pub use super::Error;
}

// ---------------------------------------------------------------------
// Impls for std types
// ---------------------------------------------------------------------

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| {
                    Error::custom(format!("expected integer, got {v:?}"))
                })?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| {
                    Error::custom(format!("expected unsigned integer, got {v:?}"))
                })?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        f64::from_json_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, got {v:?}")))
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::custom("expected single-char string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for () {
    fn to_json_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            _ => Err(Error::custom("expected null")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_json_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_json_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_json_value(v)?;
        <[T; N]>::try_from(items).map_err(|_| Error::custom("wrong array length"))
    }
}

macro_rules! ser_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| Error::custom("expected array"))?;
                const LEN: usize = [$($idx),+].len();
                if a.len() != LEN {
                    return Err(Error::custom(format!(
                        "expected {LEN}-tuple, got {} elements", a.len()
                    )));
                }
                Ok(($($t::from_json_value(&a[$idx])?,)+))
            }
        }
    )*};
}
ser_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_json_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_json_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_json_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_json_value(v)?)))
            .collect()
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_json_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for std::collections::HashSet<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize + std::hash::Hash + Eq> Deserialize for std::collections::HashSet<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_json_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_json_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        T::from_json_value(v).map(Box::new)
    }
}
