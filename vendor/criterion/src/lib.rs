//! Offline stand-in for `criterion`.
//!
//! Provides the calling surface the workspace's benches use
//! (`Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`,
//! `black_box`) over a simple wall-clock sampler: per bench it warms up,
//! then takes `sample_size` samples and reports the median per-iteration
//! time. No statistics engine, no HTML reports — but relative
//! comparisons (e.g. tracing-enabled vs disabled ablations) remain
//! meaningful because both sides go through the same sampler.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

pub struct Bencher<'a> {
    config: &'a Config,
    /// Median per-iteration nanoseconds, filled by `iter`.
    result_ns: Option<f64>,
}

impl Bencher<'_> {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up: run until the warm-up budget elapses, measuring the
        // routine's rough cost to size the sample batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.config.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = self.config.warm_up_time.as_secs_f64() / warm_iters.max(1) as f64;

        let samples = self.config.sample_size.max(2);
        let budget = self.config.measurement_time.as_secs_f64();
        let iters_per_sample =
            ((budget / samples as f64 / per_iter.max(1e-9)).ceil() as u64).max(1);

        let mut sample_ns: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            sample_ns.push(elapsed / iters_per_sample as f64);
        }
        sample_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.result_ns = Some(sample_ns[sample_ns.len() / 2]);
    }

    pub fn iter_with_large_drop<R, F: FnMut() -> R>(&mut self, routine: F) {
        self.iter(routine);
    }
}

struct Config {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
}

pub struct Criterion {
    config: Config,
    results: Vec<(String, f64)>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            config: Config {
                sample_size: 10,
                warm_up_time: Duration::from_millis(300),
                measurement_time: Duration::from_millis(500),
                filter: None,
            },
            results: Vec::new(),
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    /// Reads an optional substring filter from the command line,
    /// ignoring flags (arguments starting with `-`) and the flag values
    /// cargo-bench passes along.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        let mut filter = None;
        while let Some(arg) = args.next() {
            if arg == "--bench" || arg == "--test" {
                continue;
            }
            if arg.starts_with("--") {
                // Skip `--flag value` style options.
                if !arg.contains('=') {
                    let _ = args.next();
                }
                continue;
            }
            if arg.starts_with('-') {
                continue;
            }
            filter = Some(arg);
            break;
        }
        self.config.filter = filter;
        self
    }

    fn run_one(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        if let Some(filter) = &self.config.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            config: &self.config,
            result_ns: None,
        };
        f(&mut bencher);
        let ns = bencher.result_ns.unwrap_or(f64::NAN);
        println!("{id:<60} time: [{}]", format_ns(ns));
        self.results.push((id, ns));
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into().id;
        self.run_one(id, |b| f(b));
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Per-bench median nanoseconds recorded so far, keyed by full id.
    pub fn results(&self) -> &[(String, f64)] {
        &self.results
    }

    pub fn final_summary(&mut self) {
        if self.results.is_empty() {
            return;
        }
        println!("\nsummary ({} benchmarks):", self.results.len());
        for (id, ns) in &self.results {
            println!("  {id:<58} {}", format_ns(*ns));
        }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        self.criterion.run_one(full, |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        self.criterion.run_one(full, |b| f(b, input));
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.config.sample_size = n;
        self
    }

    pub fn finish(self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_a_result() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.bench_function("smoke", |b| b.iter(|| black_box(1 + 1)));
        assert_eq!(c.results().len(), 1);
        assert!(c.results()[0].1 > 0.0);
    }

    #[test]
    fn group_names_compose() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::from_parameter(4), &4usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
        assert_eq!(c.results()[0].0, "grp/4");
    }
}
