#!/bin/sh
# Final verification sequence (run from the repo root): fmt, clippy,
# golden regeneration, full tests, full benches.
set -x
cargo fmt --all
cargo clippy --workspace --all-targets 2>&1 | grep -cE "^(warning|error)" || true
cargo run -q -p pdc-bench --bin reproduce -- injection > tests/golden/injection.txt
cargo run -q -p pdc-bench --bin reproduce -- economics > tests/golden/economics.txt
cargo test --workspace 2>&1 | tee /root/repo/test_output.txt | grep -E "test result|FAILED" | tail -40
cargo bench --workspace 2>&1 | tee /root/repo/bench_output.txt | grep -E "^(Benchmarking|test )|time:" | tail -20
echo FINALIZE_DONE
